"""The cluster worker: a separate host process that evaluates shipped regions.

Spawned on any machine that can reach the coordinator::

    python -m repro.cluster.worker --connect HOST:PORT

One TCP connection carries everything: the handshake, job payloads (pickled
:class:`~repro.backends.base.WorkerJob` specs with mailboxes encoded as
:class:`~repro.cluster.wire.MailboxRef`), bridged mailbox traffic, and
heartbeats.  The worker multiplexes any number of concurrent attempts — each
job runs on its own thread, sleeping in a genuinely blocking local queue
between messages, exactly like a pooled processes worker.

The mailbox bridge is claim-based: the first :class:`~repro.backends.base.Receive`
on a mailbox sends ``("claim", attempt, uid)`` upstream, and the coordinator
replays that mailbox's full message log before forwarding live traffic.  That
replay is what makes re-execution after a worker death transparent — a restarted
evaluator sees byte-for-byte the message sequence its predecessor saw.

Language bundles arrive once per worker ever (the coordinator tracks which
shared blobs this connection already holds) and are cached by key across jobs,
mirroring the pooled substrate's :class:`~repro.backends.base.SharedBundle`
scheme.

With ``--store PATH`` the worker also mounts a persistent artifact store:
bundle blobs it receives are written under their content digest (namespace
``bundle``), and at handshake it advertises the digests it can already verify.
The coordinator then ships a :class:`~repro.cluster.wire.StoreRef` instead of
the bytes — a *restarted* worker (new process, same store) skips the multi-
megabyte bundle transfer entirely.  A digest the worker cannot resolve after
all comes back as a ``bundle_miss`` frame and the bytes are re-shipped.
"""

from __future__ import annotations

import argparse
import os
import pickle
import platform
import queue as queue_module
import socket
import sys
import threading
import time
import traceback
from typing import Any, Dict, List, Optional

from repro.backends.base import Mailbox, WakeToken, deadline_get, drive
from repro.cluster import wire
from repro.faults import plan as faults_plan


class _AttemptAborted(Exception):
    """Raised inside a job thread when the coordinator aborts the attempt."""


class WorkerMailbox(Mailbox):
    """A worker-side handle on a coordinator-resident mailbox."""

    __slots__ = ("uid", "queue")

    def __init__(self, name: str, uid: str):
        super().__init__(name)
        self.uid = uid
        self.queue: "queue_module.Queue" = queue_module.Queue()


class _Attempt:
    """Worker-side state of one running attempt."""

    __slots__ = ("attempt_id", "name", "timeout", "mailboxes", "claimed", "abort",
                 "thread")

    def __init__(self, attempt_id: int, name: str, timeout: float):
        self.attempt_id = attempt_id
        self.name = name
        self.timeout = timeout
        self.mailboxes: Dict[str, WorkerMailbox] = {}   # uid -> handle
        self.claimed: set = set()                       # uids claimed upstream
        self.abort = threading.Event()
        self.thread: Optional[threading.Thread] = None


class _AttemptTransport:
    """The Backend facade seen by a job body running on a cluster worker."""

    name = "sockets"

    def __init__(self, worker: "ClusterWorker", attempt: _Attempt):
        self._worker = worker
        self._attempt = attempt
        self._started = time.perf_counter()
        self.messages = 0
        self.bytes = 0

    def send(self, source: int, destination: int, message: Any, size_bytes: int,
             mailbox: Mailbox) -> None:
        assert isinstance(mailbox, WorkerMailbox)
        self._worker.send_frame(
            ("send", self._attempt.attempt_id, mailbox.uid, message, size_bytes)
        )
        self.messages += 1
        self.bytes += size_bytes

    def publish_report(self, region_id: int, report: Any) -> None:
        self._worker.send_frame(("report", self._attempt.attempt_id, region_id, report))

    @property
    def now(self) -> float:
        return time.perf_counter() - self._started

    def receive(self, mailbox: WorkerMailbox) -> Any:
        attempt = self._attempt
        if mailbox.uid not in attempt.claimed:
            # First receive on this mailbox: claim it so the coordinator replays
            # the full message log (the fault-tolerance replay) and forwards
            # everything that arrives from now on.
            attempt.claimed.add(mailbox.uid)
            self._worker.send_frame(("claim", attempt.attempt_id, mailbox.uid))
        deadline = time.monotonic() + attempt.timeout
        while True:
            if attempt.abort.is_set():
                raise _AttemptAborted()
            message = deadline_get(
                mailbox.queue, deadline, attempt.timeout, "cluster worker", mailbox.name
            )
            if isinstance(message, WakeToken):
                continue
            return message


def _decode_kwargs(value: Any, attempt: _Attempt) -> Any:
    """Turn wire mailbox refs back into claimable handles, recursing into containers."""
    if isinstance(value, wire.MailboxRef):
        mailbox = attempt.mailboxes.get(value.uid)
        if mailbox is None:
            mailbox = WorkerMailbox(value.name, value.uid)
            attempt.mailboxes[value.uid] = mailbox
        return mailbox
    if isinstance(value, dict):
        return {key: _decode_kwargs(item, attempt) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return type(value)(_decode_kwargs(item, attempt) for item in value)
    return value


class ClusterWorker:
    """One worker process's connection to the coordinator, driving many attempts."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        connect_timeout: float = 10.0,
        store: Any = None,
    ):
        self.host = host
        self.port = port
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.connect_timeout = connect_timeout
        if store is not None:
            from repro.store import open_store

            self.store = open_store(store)
        else:
            self.store = None
        self.worker_id: Optional[int] = None
        self.heartbeat_interval = 1.0
        self._sock: Optional[socket.socket] = None
        self._rfile: Any = None
        self._wfile: Any = None
        self._send_lock = threading.Lock()
        self._attempts: Dict[int, _Attempt] = {}
        self._attempts_lock = threading.Lock()
        self._shared_cache: Dict[int, Any] = {}
        self._shared_lock = threading.Lock()
        self._stopped = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None

    # ----------------------------------------------------------------- lifecycle

    def connect(self) -> None:
        """Dial the coordinator (retrying briefly) and run the handshake."""
        deadline = time.monotonic() + self.connect_timeout
        last_error: Optional[Exception] = None
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=10.0
                )
                break
            except OSError as error:
                last_error = error
                if time.monotonic() >= deadline:
                    raise wire.ProtocolError(
                        f"could not reach coordinator at {self.host}:{self.port} "
                        f"within {self.connect_timeout:.0f}s: {last_error}"
                    ) from error
                time.sleep(0.1)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        capabilities: Dict[str, Any] = {
            "python": platform.python_version(),
            "platform": sys.platform,
            "pid": os.getpid(),
        }
        if self.store is not None:
            # Advertise every bundle blob that verifies *right now*; the
            # coordinator ships StoreRefs for these instead of bytes.
            capabilities["bundle_digests"] = sorted(
                self.store.verified_keys("bundle")
            )
        wire.send_message(
            self._wfile, wire.hello("worker", self.name, capabilities)
        )
        welcome = wire.check_handshake(
            wire.recv_message(self._rfile), expect_status=True
        )
        self.worker_id = welcome["worker_id"]
        self.heartbeat_interval = float(welcome.get("heartbeat_interval", 1.0))
        self._sock.settimeout(None)
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-worker-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def run(self) -> int:
        """Serve jobs until the coordinator shuts down (0) or the link drops (1)."""
        if self._sock is None:
            self.connect()
        try:
            while not self._stopped.is_set():
                frame = wire.recv_message(self._rfile)
                if not self._handle_frame(frame):
                    return 0
        except (wire.ProtocolError, OSError) as error:
            if self._stopped.is_set():
                return 0
            print(f"repro worker: connection lost: {error}", file=sys.stderr)
            return 1
        finally:
            self._stopped.set()
            self._abort_all("connection closed")
            try:
                self._sock.close()
            except OSError:
                pass
        return 0

    def send_frame(self, frame: Any) -> None:
        """Thread-safe framed send (job threads + heartbeat share the connection)."""
        with self._send_lock:
            if self._stopped.is_set():
                return
            try:
                wire.send_message(self._wfile, frame)
            except (wire.ProtocolError, OSError):
                # The reader loop observes the same dead socket and unwinds; jobs
                # in flight are aborted there.
                self._stopped.set()

    # ----------------------------------------------------------------- internals

    def _heartbeat_loop(self) -> None:
        seq = 0
        while not self._stopped.wait(self.heartbeat_interval):
            seq += 1
            self.send_frame(("ping", seq))

    def _handle_frame(self, frame: Any) -> bool:
        tag = frame[0]
        if tag == "job":
            _, attempt_id, name, payload_blob, shared_blobs, timeout = frame
            attempt = _Attempt(attempt_id, name, timeout)
            with self._attempts_lock:
                self._attempts[attempt_id] = attempt
            attempt.thread = threading.Thread(
                target=self._run_attempt,
                args=(attempt, payload_blob, shared_blobs),
                name=f"repro-worker-job-{name}",
                daemon=True,
            )
            attempt.thread.start()
            return True
        if tag == "deliver":
            _, attempt_id, uid, message = frame
            with self._attempts_lock:
                attempt = self._attempts.get(attempt_id)
                mailbox = attempt.mailboxes.get(uid) if attempt is not None else None
            if mailbox is not None:
                mailbox.queue.put(message)
            return True
        if tag == "abort":
            with self._attempts_lock:
                attempt = self._attempts.get(frame[1])
            if attempt is not None:
                attempt.abort.set()
                # A job asleep in a blocking receive never looks at the abort
                # event on its own: wake every mailbox it could be blocked on.
                for mailbox in attempt.mailboxes.values():
                    mailbox.queue.put(WakeToken("attempt aborted"))
            return True
        if tag == "shutdown":
            self._stopped.set()
            self._abort_all("cluster shutdown")
            return False
        return True  # unknown benign frame: skip (forward-compatible)

    def _bundle_from_store(self, ref: "wire.StoreRef") -> Optional[bytes]:
        """Resolve a store reference to verified blob bytes, or ``None`` (a miss).

        The store already checks its integrity trailer; the digest re-check on
        top catches a *different* blob landing under this key (another writer's
        bug), so a resolved ref is always byte-identical to what the coordinator
        would have shipped.
        """
        if self.store is None:
            return None
        payload = self.store.read("bundle", ref.digest)
        if payload is None:
            return None
        from repro.store import content_digest

        if content_digest(payload) != ref.digest:
            self.store.delete("bundle", ref.digest)
            return None
        return payload

    def _bundle_to_store(self, blob: bytes) -> None:
        """Persist received bundle bytes so the *next* worker life skips the ship."""
        if self.store is None:
            return
        from repro.store import content_digest

        digest = content_digest(blob)
        if not self.store.contains("bundle", digest):
            self.store.write("bundle", digest, blob)

    def _run_attempt(self, attempt: _Attempt, payload_blob: bytes,
                     shared_blobs: Dict[int, Any]) -> None:
        try:
            with self._shared_lock:
                for key, blob in shared_blobs.items():
                    if key in self._shared_cache:
                        continue
                    if isinstance(blob, wire.StoreRef):
                        resolved = self._bundle_from_store(blob)
                        if resolved is None:
                            # The advertised blob is gone (evicted or damaged
                            # since the handshake).  Not a body error — ask the
                            # coordinator to re-ship real bytes and retire this
                            # attempt without running anything.
                            self.send_frame(
                                ("bundle_miss", attempt.attempt_id, key,
                                 blob.digest)
                            )
                            return
                        blob = resolved
                    else:
                        self._bundle_to_store(blob)
                    self._shared_cache[key] = pickle.loads(blob)
            factory, encoded_kwargs, shared_keys = pickle.loads(payload_blob)
            kwargs = _decode_kwargs(encoded_kwargs, attempt)
            with self._shared_lock:
                for argument, key in shared_keys.items():
                    kwargs[argument] = self._shared_cache[key]
            transport = _AttemptTransport(self, attempt)
            body = factory(transport, **kwargs)
            drive(body, transport.receive)
            self.send_frame(
                ("done", attempt.attempt_id, transport.messages, transport.bytes)
            )
        except _AttemptAborted:
            self.send_frame(("aborted", attempt.attempt_id))
        except BaseException:  # noqa: BLE001 — shipped upstream; worker survives
            self.send_frame(("error", attempt.attempt_id, traceback.format_exc()))
        finally:
            with self._attempts_lock:
                self._attempts.pop(attempt.attempt_id, None)

    def _abort_all(self, reason: str) -> None:
        with self._attempts_lock:
            attempts = list(self._attempts.values())
        for attempt in attempts:
            attempt.abort.set()
            for mailbox in attempt.mailboxes.values():
                mailbox.queue.put(WakeToken(reason))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="Join a repro compile cluster as an evaluator worker.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the cluster coordinator",
    )
    parser.add_argument(
        "--name",
        default=None,
        help="worker name shown in cluster diagnostics (default: host-pid)",
    )
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="seconds to keep retrying the initial connection (default: 10)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="mount a persistent artifact store: language bundles received "
             "from the coordinator are kept across worker restarts, so a "
             "rejoining worker skips the bundle transfer entirely",
    )
    options = parser.parse_args(argv)
    host, _, port_text = options.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"--connect expects HOST:PORT, got {options.connect!r}")
    # Adopt a fault plan shipped via the environment (chaos tests): a corrupt or
    # absent token is a guaranteed no-op.
    faults_plan.load_from_env()
    worker = ClusterWorker(
        host, int(port_text), name=options.name,
        connect_timeout=options.connect_timeout,
        store=options.store,
    )
    try:
        worker.connect()
    except (wire.ProtocolError, OSError) as error:
        print(f"repro worker: {error}", file=sys.stderr)
        return 2
    return worker.run()


if __name__ == "__main__":
    sys.exit(main())
