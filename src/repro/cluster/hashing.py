"""Consistent hashing of regions and language bundles onto worker shards.

A classic virtual-node hash ring: each worker appears ``replicas`` times at
pseudo-random points of a 64-bit circle, and a key maps to the first worker
point at or after its own hash.  Adding or removing one worker therefore only
remaps the keys that hashed into that worker's arcs — the property the cluster
coordinator relies on so that a joining (or dying) shard does not reshuffle
every region and force every language bundle to re-ship.

:meth:`HashRing.preference` returns the full failover order for a key (each
live worker once, in ring order), which is also how retries and speculative
attempts pick a *different* shard deterministically.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash (``hash()`` is salted per process)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping string keys to named nodes."""

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.replicas = replicas
        self._points: List[int] = []          # sorted virtual-node hashes
        self._owner: Dict[int, str] = {}      # point hash -> node name

    def __len__(self) -> int:
        return len(self.nodes())

    def __contains__(self, node: str) -> bool:
        return any(owner == node for owner in self._owner.values())

    def nodes(self) -> List[str]:
        return sorted(set(self._owner.values()))

    def add(self, node: str) -> None:
        """Insert ``node`` at its virtual points (idempotent)."""
        if node in self:
            return
        for replica in range(self.replicas):
            point = stable_hash(f"{node}#{replica}")
            # A 64-bit collision between two distinct nodes is vanishingly rare;
            # keep the first owner so add/remove stay symmetric.
            if point in self._owner:
                continue
            self._owner[point] = node
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        """Drop ``node`` from the ring (idempotent)."""
        dropped = [point for point, owner in self._owner.items() if owner == node]
        for point in dropped:
            del self._owner[point]
        if dropped:
            doomed = set(dropped)
            self._points = [point for point in self._points if point not in doomed]

    def lookup(self, key: str) -> Optional[str]:
        """The node owning ``key``, or ``None`` on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_left(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._owner[self._points[index]]

    def preference(self, key: str) -> List[str]:
        """Every node once, in failover order for ``key`` (owner first)."""
        if not self._points:
            return []
        start = bisect.bisect_left(self._points, stable_hash(key))
        seen: List[str] = []
        for offset in range(len(self._points)):
            owner = self._owner[self._points[(start + offset) % len(self._points)]]
            if owner not in seen:
                seen.append(owner)
        return seen
