"""Deterministic slow workloads for cluster fault-injection tests and demos.

Everything here is module-level and picklable on purpose: these grammars ship
to real worker processes (fresh interpreters) exactly like production language
bundles, so closures and lambdas would break at the pickling boundary.

The primary throttle is the fault plane: a :class:`repro.faults.FaultPlan` with
``testing.dawdle`` delay/stall rules, installed in the evaluating process (the
plan rides ``REPRO_FAULTS`` into workers, so tests install it before creating
the substrate).  Two legacy environment knobs remain as thin shims over the
same ``_dawdle()`` seam, for callers that predate the fault plane:

* ``REPRO_CLUSTER_TEST_SLEEP`` — seconds each semantic function sleeps.  Slows
  evaluation down deterministically (the values computed never change) so a
  test or demo has time to kill a worker mid-evaluation.
* ``REPRO_CLUSTER_TEST_STALL_FILE`` — path of a sentinel file.  While the file
  exists, semantic functions stall (checking twice a second, bounded); deleting
  the file releases them.  This is how the coordinator-timeout test makes a
  *first* attempt overrun ``job_timeout`` and the *retry* run fast: the test
  removes the file once it has observed the timeout.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.faults import plan as _faults
from repro.grammar.attributes import AttributeConverter
from repro.grammar.builder import GrammarBuilder, Rule
from repro.grammar.grammar import AttributeGrammar
from repro.symtab.symbol_table import SymbolTable, st_add, st_create, st_get, st_lookup, st_put

SLEEP_ENV = "REPRO_CLUSTER_TEST_SLEEP"
STALL_FILE_ENV = "REPRO_CLUSTER_TEST_STALL_FILE"

#: Upper bound on one stall (seconds) so a forgotten sentinel cannot hang CI.
MAX_STALL = 30.0


def _dawdle() -> None:
    """Slow this semantic function down, fault-plane first, env shims second.

    Under a fault plan, a ``testing.dawdle`` rule with ``action="delay"``
    sleeps ``rule.delay`` seconds, and ``action="stall"`` sleeps it repeatedly
    (bounded by :data:`MAX_STALL`) for as long as the plan keeps firing —
    deterministic, seed-driven versions of the two env knobs below.
    """
    if _faults.ACTIVE is not None:
        hit = _faults.ACTIVE.check("testing.dawdle")
        if hit is not None:
            if hit.action == "stall":
                deadline = time.monotonic() + MAX_STALL
                while time.monotonic() < deadline:
                    time.sleep(max(0.05, hit.delay))
                    again = _faults.ACTIVE.check("testing.dawdle")
                    if again is None:
                        break
                    hit = again
            else:
                hit.sleep()
    delay = float(os.environ.get(SLEEP_ENV, "0") or "0")
    if delay > 0:
        time.sleep(delay)
    stall_file = os.environ.get(STALL_FILE_ENV)
    if stall_file:
        deadline = time.monotonic() + MAX_STALL
        while os.path.exists(stall_file) and time.monotonic() < deadline:
            time.sleep(0.05)


def slow_number(text: str) -> int:
    _dawdle()
    return int(text)


def slow_add(left: int, right: int) -> int:
    _dawdle()
    return left + right


def slow_multiply(left: int, right: int) -> int:
    _dawdle()
    return left * right


def _stab_size(table: Any) -> int:
    return table.transmission_size() if isinstance(table, SymbolTable) else 8


def sleepy_grammar(min_split_size: int = 40) -> AttributeGrammar:
    """The appendix expression grammar with throttled semantic functions.

    Identical values to :func:`repro.exprlang.expression_grammar` on every
    input; only evaluation *speed* is environment-controlled.  The low split
    threshold makes even small sources decompose into several regions, so a
    multi-worker cluster genuinely shards the compile.
    """
    builder = GrammarBuilder("cluster-sleepy")
    builder.name_terminals("IDENTIFIER", "NUMBER", value_attribute="string")
    builder.keywords("LET", "IN", "NI", "+", "*", "=", "(", ")")
    stab = AttributeConverter(put=st_put, get=st_get, size_of=_stab_size)
    builder.nonterminal("main_expr", synthesized=["value"])
    builder.nonterminal(
        "expr", synthesized=["value"], inherited=["stab"], converters={"stab": stab}
    )
    builder.nonterminal(
        "block",
        synthesized=["value"],
        inherited=["stab"],
        split=True,
        min_split_size=min_split_size,
        converters={"stab": stab},
    )
    builder.left("+")
    builder.left("*")
    builder.production(
        "main_expr -> expr",
        Rule("$$.value", ["$1.value"]),
        Rule("$1.stab", [], st_create, name="st_create"),
    )
    builder.production(
        "expr -> expr + expr",
        Rule("$$.value", ["$1.value", "$3.value"], slow_add, name="slow_add"),
        Rule("$1.stab", ["$$.stab"]),
        Rule("$3.stab", ["$$.stab"]),
    )
    builder.production(
        "expr -> expr * expr",
        Rule("$$.value", ["$1.value", "$3.value"], slow_multiply, name="slow_multiply"),
        Rule("$1.stab", ["$$.stab"]),
        Rule("$3.stab", ["$$.stab"]),
    )
    builder.production(
        "expr -> ( expr )",
        Rule("$$.value", ["$2.value"]),
        Rule("$2.stab", ["$$.stab"]),
    )
    builder.production(
        "expr -> IDENTIFIER",
        Rule("$$.value", ["$$.stab", "$1.string"], st_lookup, name="st_lookup"),
    )
    builder.production(
        "expr -> NUMBER",
        Rule("$$.value", ["$1.string"], slow_number, name="slow_number"),
    )
    builder.production(
        "expr -> block",
        Rule("$$.value", ["$1.value"]),
        Rule("$1.stab", ["$$.stab"]),
    )
    builder.production(
        "block -> LET IDENTIFIER = expr IN expr NI",
        Rule("$$.value", ["$6.value"]),
        Rule("$4.stab", ["$$.stab"]),
        Rule("$6.stab", ["$$.stab", "$2.string", "$4.value"], st_add, name="st_add"),
    )
    return builder.build(start="main_expr")
