"""The multi-host wire protocol: length-prefixed pickled frames + handshake.

Every byte that crosses a cluster connection is a *frame*: a 4-byte big-endian
length followed by exactly that many payload bytes (a pickled Python object).
Framing is the only layer that touches raw sockets; everything above it —
handshake, job shipping, mailbox bridging, heartbeats — exchanges plain tuples.

Hardening rules (mirroring the PackedTree decode hardening):

* a truncated length header or payload raises :class:`ProtocolError` naming how
  many bytes were expected vs received;
* a length that exceeds :data:`MAX_FRAME_BYTES` (a garbage header, or a peer
  speaking a different protocol) is rejected before any allocation;
* an unpicklable payload raises :class:`ProtocolError` instead of a bare
  ``UnpicklingError``.

The handshake runs once per connection, worker side first::

    worker  -> {"magic": MAGIC, "version": PROTOCOL_VERSION,
                "role": "worker", "name": ..., "capabilities": {...}}
    coord   -> {"magic": MAGIC, "version": PROTOCOL_VERSION, "status": "ok",
                "worker_id": ..., "heartbeat_interval": ...}
              (or {"status": "reject", "reason": ...} followed by close)

Both sides validate magic and version with :func:`check_handshake`; a version
mismatch is an explicit, readable error — never a silent hang or a pickle
explosion halfway into the first job.

Post-handshake frame vocabulary (tag-first tuples):

========================  =============================================================
worker -> coordinator
------------------------  -------------------------------------------------------------
``("claim", a, uid)``     attempt ``a`` will receive on mailbox ``uid``; the
                          coordinator replays the mailbox's full message log and
                          forwards every later message
``("send", a, uid, m, n)``  attempt ``a`` sends message ``m`` (``n`` modelled bytes)
                          to mailbox ``uid``
``("report", a, r, rep)`` publish evaluator report ``rep`` for region ``r``
``("done", a, m, b)``     attempt ``a`` finished (``m`` messages / ``b`` bytes sent)
``("aborted", a)``        attempt ``a`` unwound after an abort frame
``("error", a, tb)``      attempt ``a``'s body raised; ``tb`` is the traceback text
``("bundle_miss", a, k, d)``  attempt ``a`` could not resolve shared blob ``k``
                          (store ref digest ``d``) from its local store; re-ship bytes
``("ping", seq)``         heartbeat
------------------------  -------------------------------------------------------------
coordinator -> worker
------------------------  -------------------------------------------------------------
``("job", a, name, blob, shared, timeout)``  run job ``name`` as attempt ``a``
                          (``shared`` maps key → blob bytes, or → :class:`StoreRef`
                          when the worker advertised the digest at handshake)
``("deliver", a, uid, m)``  a message for attempt ``a``'s claimed mailbox ``uid``
``("abort", a)``          stop attempt ``a`` (its job completed elsewhere or failed)
``("shutdown",)``         the cluster is going away; exit after unwinding
========================  =============================================================
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.faults import plan as _faults

#: First bytes of every handshake: identifies "a repro cluster peer" before any
#: version logic runs, so a stray HTTP client gets a clear rejection.
MAGIC = "repro-cluster"

#: Bumped on every incompatible frame-vocabulary change; peers must match exactly.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame (defensive: a corrupt length header must not
#: trigger a multi-gigabyte allocation).  Large compiles ship regions well under
#: this; raise it here if a workload ever legitimately needs more.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


@dataclass(frozen=True)
class MailboxRef:
    """Stands in for a coordinator-resident mailbox inside a pickled job spec.

    Defined here (not in the coordinator) because both ends unpickle it: the
    coordinator writes refs into job payloads, the worker decodes them back into
    claimable mailbox handles.
    """

    uid: str
    name: str


@dataclass(frozen=True)
class StoreRef:
    """Stands in for shared-blob *bytes* the receiving worker already holds.

    A worker that mounts a persistent store (``--store``) advertises the
    content digests of its verified bundle blobs at handshake; the coordinator
    then ships this tiny reference instead of the (often multi-megabyte)
    pickled grammar bundle.  A worker that cannot resolve the digest after all
    — the blob was evicted or damaged since the handshake — answers with a
    ``bundle_miss`` frame and the coordinator re-ships real bytes.  A stale
    store can cost one extra round trip; it can never change results.
    """

    digest: str


class ProtocolError(ValueError):
    """A malformed, truncated or incompatible frame / handshake.

    Subclasses :class:`ValueError` so generic decode-hardening handlers (the
    PackedTree style) treat wire corruption uniformly.
    """


def _read_exact(stream: Any, count: int, what: str) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ProtocolError` naming the gap."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            received = count - remaining
            raise ProtocolError(
                f"connection closed mid-{what}: expected {count} bytes, "
                f"received {received}"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _apply_wire_faults(point: str, payload: bytes) -> bytes:
    """Mutate, truncate, delay or fail one frame under the active fault plan.

    Corruption and truncation are applied to the *payload bytes* (never the
    length header), so a corrupted frame exercises the unpickle-hardening path
    and a truncated one the ``_read_exact`` gap detection — exactly the two
    failure shapes a flaky real network produces.
    """
    plan = _faults.ACTIVE
    if plan is None:
        return payload
    hit = plan.check(point)
    if hit is None:
        return payload
    if hit.action in ("delay", "stall"):
        hit.sleep()
        return payload
    if hit.action == "corrupt":
        if not payload:
            return payload
        mutated = bytearray(payload)
        mutated[len(mutated) // 2] ^= 0xFF
        return bytes(mutated)
    if hit.action == "truncate":
        return payload[: max(0, len(payload) - 1 - len(payload) // 2)]
    hit.raise_error()
    raise AssertionError("unreachable")  # pragma: no cover


def write_frame(stream: Any, payload: bytes) -> int:
    """Write one length-prefixed frame; returns the bytes put on the wire."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    if _faults.ACTIVE is not None:
        mutated = _apply_wire_faults("wire.send", payload)
        stream.write(_HEADER.pack(len(payload)))
        stream.write(mutated)
        stream.flush()
        if len(mutated) != len(payload):
            # A truncated frame went out under the ORIGINAL length header: close
            # the stream so the peer sees a connection cut mid-frame (a clean
            # ProtocolError from _read_exact) instead of a desynced byte stream.
            try:
                stream.close()
            except OSError:
                pass
            raise ProtocolError(
                f"connection lost mid-frame: wrote {len(mutated)} of "
                f"{len(payload)} payload bytes"
            )
        return _HEADER.size + len(mutated)
    stream.write(_HEADER.pack(len(payload)))
    stream.write(payload)
    stream.flush()
    return _HEADER.size + len(payload)


def read_frame(stream: Any) -> bytes:
    """Read one frame's payload, raising :class:`ProtocolError` on truncation."""
    header = _read_exact(stream, _HEADER.size, "frame header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt stream or foreign protocol?)"
        )
    payload = _read_exact(stream, length, "frame payload")
    if _faults.ACTIVE is not None:
        payload = _apply_wire_faults("wire.recv", payload)
        if len(payload) != length:
            raise ProtocolError(
                f"connection closed mid-frame payload: expected {length} bytes, "
                f"received {len(payload)}"
            )
    return payload


def send_message(stream: Any, message: Any) -> int:
    """Pickle ``message`` into one frame; returns the bytes put on the wire."""
    try:
        payload = pickle.dumps(message)
    except Exception as error:
        raise ProtocolError(f"message is not picklable for the wire: {error}") from error
    return write_frame(stream, payload)


def recv_message(stream: Any) -> Any:
    """Read and unpickle one frame, wrapping decode failures in ProtocolError."""
    payload = read_frame(stream)
    try:
        return pickle.loads(payload)
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError(f"undecodable frame payload: {error}") from error


def hello(role: str, name: str, capabilities: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The opening handshake message a connecting peer sends."""
    return {
        "magic": MAGIC,
        "version": PROTOCOL_VERSION,
        "role": role,
        "name": name,
        "capabilities": dict(capabilities or {}),
    }


def welcome(worker_id: int, heartbeat_interval: float) -> Dict[str, Any]:
    """The coordinator's accepting reply to a worker's hello."""
    return {
        "magic": MAGIC,
        "version": PROTOCOL_VERSION,
        "status": "ok",
        "worker_id": worker_id,
        "heartbeat_interval": heartbeat_interval,
    }


def reject(reason: str) -> Dict[str, Any]:
    """The coordinator's refusing reply (sent just before closing the connection)."""
    return {"magic": MAGIC, "version": PROTOCOL_VERSION, "status": "reject", "reason": reason}


def check_handshake(message: Any, *, expect_status: bool = False) -> Dict[str, Any]:
    """Validate a handshake message; raises :class:`ProtocolError` with a clear cause.

    ``expect_status`` is set by the worker side, which additionally requires the
    coordinator's ``status`` field (and surfaces an explicit rejection reason).
    """
    if not isinstance(message, dict):
        raise ProtocolError(f"handshake expected a dict, got {type(message).__name__}")
    if message.get("magic") != MAGIC:
        raise ProtocolError(
            f"peer is not a repro cluster endpoint (magic {message.get('magic')!r})"
        )
    version = message.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this end speaks {PROTOCOL_VERSION}"
        )
    if expect_status:
        status = message.get("status")
        if status == "reject":
            raise ProtocolError(
                f"coordinator rejected the connection: {message.get('reason')}"
            )
        if status != "ok":
            raise ProtocolError(f"unexpected handshake status {status!r}")
    return message
