"""Multi-host compilation: the coordinator/worker cluster behind ``"sockets"``.

Layout (mirroring the service-behind-a-thin-front-end layering):

* :mod:`repro.cluster.wire` — length-prefixed pickled framing, versioned
  handshake, :class:`~repro.cluster.wire.ProtocolError` hardening;
* :mod:`repro.cluster.hashing` — the consistent hash ring that shards regions
  and language bundles across workers;
* :mod:`repro.cluster.membership` — the worker directory (ids, heartbeats,
  liveness);
* :mod:`repro.cluster.coordinator` — mailbox bridging with replayable message
  logs, duplicate-output suppression, reassignment/speculation;
* :mod:`repro.cluster.worker` — the ``python -m repro.cluster.worker`` host
  process entrypoint.

Most callers never import this package: ``create_substrate("sockets")`` (or
``Session(backend="sockets")``) wires it all up behind the ordinary
:class:`~repro.backends.base.Substrate` contract.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterError,
    ClusterMailbox,
    ClusterStats,
)
from repro.cluster.hashing import HashRing, stable_hash
from repro.cluster.membership import WorkerDirectory, WorkerInfo
from repro.cluster.wire import MAGIC, PROTOCOL_VERSION, MailboxRef, ProtocolError


def __getattr__(name: str):
    # ClusterWorker is exported lazily: importing it eagerly would pull
    # repro.cluster.worker into sys.modules during the package import that
    # ``python -m repro.cluster.worker`` performs, and runpy then warns about
    # re-executing an already-imported module.
    if name == "ClusterWorker":
        from repro.cluster.worker import ClusterWorker

        return ClusterWorker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ClusterCoordinator",
    "ClusterError",
    "ClusterMailbox",
    "ClusterStats",
    "ClusterWorker",
    "HashRing",
    "MAGIC",
    "MailboxRef",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "WorkerDirectory",
    "WorkerInfo",
    "stable_hash",
]
