"""The cluster coordinator: shard assignment, mailbox bridging, fault tolerance.

The coordinator is the hub of a star topology.  Every worker holds one TCP
connection to it; every mailbox of every run session logically lives here.  A
message sent anywhere in the cluster arrives at the coordinator exactly once and
is then delivered to whoever receives on that mailbox — a coordinator-side body
(parser, librarian, replay stand-ins) through a local queue, or a remote worker
over its connection.

Three mechanisms give the cluster its paper-faithful fault tolerance, all built
on one invariant: **process bodies are deterministic functions of their mailbox
message sequence** (each body receives from a single mailbox, and the request
protocol has no non-blocking receive, so timing cannot leak into results).

* **Message logs.**  Every message routed to a mailbox is appended to that
  mailbox's log.  A worker *claims* a mailbox before its first receive; the
  claim replays the full log, so an evaluator restarted elsewhere sees exactly
  the message sequence its dead predecessor saw — in the same order.

* **Output suppression.**  Each job tracks how many sends have already been
  forwarded on its behalf (``forwarded``).  A re-executed (or speculative)
  attempt re-produces the identical send sequence, so its first ``forwarded``
  sends are dropped instead of delivered twice; whichever attempt gets ahead
  extends the sequence.  Reports are keyed by region and idempotent.

* **Liveness tracking.**  Death is detected by connection loss (a killed worker
  closes its socket) or by heartbeat expiry (a wedged or partitioned worker goes
  silent).  Orphaned regions are reassigned to the next shard on the consistent
  hash ring with exponential backoff, up to ``max_attempts``; optionally the
  coordinator also launches speculative second attempts for stragglers
  (``speculate_after``) and retries attempts that exceed ``job_timeout``.

Shard placement uses a consistent hash ring over the live workers
(:mod:`repro.cluster.hashing`): a region's key combines its language bundle and
job name, so repeated compiles land regions on the same shard (bundle + warm
caches) while one compile's regions still spread across the fleet.  Language
bundles ship to each shard at most once ever, exactly like the pooled processes
substrate's name-keyed :class:`~repro.backends.base.SharedBundle` scheme.
"""

from __future__ import annotations

import pickle
import queue as queue_module
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.backends.base import BackendError, Mailbox, SharedBundle, WakeToken, WorkerJob
from repro.cluster import wire
from repro.cluster.hashing import HashRing
from repro.cluster.membership import WorkerDirectory, WorkerInfo
from repro.resilience import RetryPolicy


class ClusterError(BackendError):
    """Raised when the cluster cannot complete an operation."""


class ClusterMailbox(Mailbox):
    """A coordinator-resident mailbox: a local queue plus a routed message log."""

    __slots__ = ("uid", "queue")

    def __init__(self, name: str, uid: str, fifo: "queue_module.Queue"):
        super().__init__(name)
        self.uid = uid
        self.queue = fifo


def encode_wire_kwargs(value: Any) -> Any:
    """Replace cluster mailboxes with wire references, recursing into containers."""
    if isinstance(value, ClusterMailbox):
        return wire.MailboxRef(value.uid, value.name)
    if isinstance(value, Mailbox):
        raise ClusterError(
            f"mailbox {value.name!r} was not leased from this cluster coordinator "
            "and cannot cross to a sockets worker"
        )
    if isinstance(value, dict):
        return {key: encode_wire_kwargs(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return type(value)(encode_wire_kwargs(item) for item in value)
    return value


@dataclass
class ClusterStats:
    """Point-in-time counters of one coordinator's lifetime."""

    workers_alive: int = 0
    workers_total: int = 0
    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    #: Orphaned-region reassignments after a worker death or attempt timeout.
    reassignments: int = 0
    #: Speculative second attempts launched for stragglers.
    speculative_attempts: int = 0
    #: Workers declared dead because their heartbeats went silent.
    heartbeat_timeouts: int = 0
    #: Attempts retired because they exceeded the coordinator-side job timeout.
    timeout_retries: int = 0
    #: Duplicate sends dropped by deterministic output suppression.
    sends_suppressed: int = 0
    #: Grammar/plan bundles actually shipped (cache misses across the fleet).
    bundles_shipped: int = 0
    #: Bundle ships avoided because the worker resolved a store reference
    #: (it advertised the blob's content digest at handshake).
    bundles_from_store: int = 0
    #: Store references the worker could not resolve after all (the bytes were
    #: re-shipped; costs one round trip, never correctness).
    bundle_misses: int = 0
    frames_sent: int = 0
    frames_received: int = 0

    def summary(self) -> str:
        return (
            f"cluster: {self.workers_alive}/{self.workers_total} worker(s) alive, "
            f"{self.jobs_completed} job(s) done / {self.jobs_failed} failed, "
            f"{self.reassignments} reassignment(s), "
            f"{self.speculative_attempts} speculative attempt(s), "
            f"{self.sends_suppressed} duplicate send(s) suppressed, "
            f"{self.bundles_shipped} bundle(s) shipped "
            f"({self.bundles_from_store} from worker stores)"
        )


class _WorkerConn:
    """Coordinator-side handle for one connected worker."""

    def __init__(self, info: WorkerInfo, sock: socket.socket):
        self.info = info
        self.sock = sock
        self.rfile = sock.makefile("rb")
        self.wfile = sock.makefile("wb")
        self.outbound: "queue_module.SimpleQueue[Optional[Any]]" = queue_module.SimpleQueue()
        self.known_keys: Set[int] = set()
        #: Bundle content digests this worker advertised at handshake (it holds
        #: them in its persistent store): ship StoreRefs, not bytes.
        self.store_digests: Set[str] = set()
        #: Shared keys already offered to this worker as StoreRefs (stats dedup).
        self.ref_keys: Set[int] = set()
        self.attempt_ids: Set[int] = set()
        self.lost = False
        self.writer: Optional[threading.Thread] = None

    def enqueue(self, frame: Tuple) -> None:
        self.outbound.put(frame)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _Attempt:
    """One execution of a job on one worker."""

    __slots__ = ("attempt_id", "job", "conn", "sent", "started_at", "state")

    def __init__(self, attempt_id: int, job: "_ClusterJob", conn: _WorkerConn):
        self.attempt_id = attempt_id
        self.job = job
        self.conn = conn
        self.sent = 0                      # SEND frames produced so far
        self.started_at = time.monotonic()
        self.state = "running"             # running | done | aborted | lost


class _ClusterJob:
    """One worker job of one run session, across however many attempts it takes."""

    __slots__ = (
        "job_id", "session", "name", "key", "payload_blob", "shared_keys",
        "timeout", "attempts", "attempts_started", "forwarded", "done",
        "session_aborted", "speculated", "last_started",
    )

    def __init__(self, job_id, session, name, key, payload_blob, shared_keys, timeout):
        self.job_id = job_id
        self.session = session
        self.name = name
        self.key = key
        self.payload_blob = payload_blob
        self.shared_keys = shared_keys
        self.timeout = timeout
        self.attempts: List[_Attempt] = []     # live attempts only
        self.attempts_started = 0
        self.forwarded = 0                     # sends already routed on this job's behalf
        self.done = False
        self.session_aborted = False
        self.speculated = False
        self.last_started = 0.0


class _MailboxState:
    """Routing state for one leased mailbox."""

    __slots__ = ("uid", "name", "session_id", "queue", "log", "claimants")

    def __init__(self, uid: str, name: str, session_id: int):
        self.uid = uid
        self.name = name
        self.session_id = session_id
        self.queue: "queue_module.Queue" = queue_module.Queue()
        self.log: List[Any] = []
        self.claimants: List[_Attempt] = []


class ClusterCoordinator:
    """Accepts workers, assigns sharded jobs, bridges mailboxes, survives deaths."""

    #: How long an exponential retry backoff may grow (seconds).
    MAX_BACKOFF = 2.0

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 10.0,
        max_attempts: int = 3,
        retry_backoff: float = 0.05,
        speculate_after: Optional[float] = None,
        job_timeout: Optional[float] = None,
        worker_request: Optional[Callable[[], None]] = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        # The one shared backoff vocabulary (repro.resilience) instead of a
        # hand-rolled exponential; same schedule as the old _backoff_delay.
        self._retry_policy = RetryPolicy(
            max_attempts=max_attempts,
            base_delay=retry_backoff,
            max_delay=self.MAX_BACKOFF,
        )
        self.speculate_after = speculate_after
        self.job_timeout = job_timeout
        self._worker_request = worker_request
        self._bind_host, self._bind_port = host, port
        self._lock = threading.RLock()
        self._server: Optional[socket.socket] = None
        self._address: Optional[Tuple[str, int]] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._monitor_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self.directory = WorkerDirectory()
        self._ring = HashRing()
        self._conns: Dict[int, _WorkerConn] = {}
        self._worker_joined = threading.Condition()
        self._mailboxes: Dict[str, _MailboxState] = {}
        self._mailbox_seq = 0
        self._jobs: Dict[int, _ClusterJob] = {}
        self._attempts: Dict[int, _Attempt] = {}
        self._pending: Set[_ClusterJob] = set()
        self._awaiting_worker: List[_ClusterJob] = []
        self._retries: List[Tuple[float, _ClusterJob]] = []
        self._job_seq = 0
        self._attempt_seq = 0
        self._shared_ids: Dict[Tuple, int] = {}
        self._shared_objects: Dict[int, Any] = {}
        self._shared_blobs: Dict[int, bytes] = {}
        self._shared_digests: Dict[int, str] = {}
        self._next_shared_key = 0
        self.stats = ClusterStats()
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> "ClusterCoordinator":
        with self._lock:
            if self._stopped:
                raise ClusterError("cluster coordinator has been shut down")
            if self._started:
                return self
            self._started = True
            server = socket.create_server(
                (self._bind_host, self._bind_port), reuse_port=False
            )
            server.listen(64)
            self._server = server
            self._address = server.getsockname()[:2]
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-cluster-accept", daemon=True
            )
            self._accept_thread.start()
            self._monitor_thread = threading.Thread(
                target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
            )
            self._monitor_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` workers connect to (valid after :meth:`start`)."""
        if self._address is None:
            raise ClusterError("cluster coordinator not started")
        return self._address

    def shutdown(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            conns = list(self._conns.values())
            server = self._server
        for conn in conns:
            conn.enqueue(("shutdown",))
            conn.enqueue(None)
        if server is not None:
            try:
                server.close()
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        for conn in conns:
            if conn.writer is not None:
                conn.writer.join(timeout=max(0.0, deadline - time.monotonic()))
            conn.close()
        for thread in (self._accept_thread, self._monitor_thread):
            if thread is not None:
                thread.join(timeout=5.0)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> int:
        """Block until ``count`` workers are alive (or the timeout elapses)."""
        deadline = time.monotonic() + timeout
        with self._worker_joined:
            while self.directory.alive_count() < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._worker_joined.wait(timeout=remaining)
        return self.directory.alive_count()

    # --------------------------------------------------------------- session API

    def lease_mailbox(self, session_id: int, name: str) -> ClusterMailbox:
        """Create a coordinator-resident mailbox for one run session."""
        with self._lock:
            if self._stopped:
                raise ClusterError("cluster coordinator has been shut down")
            self._mailbox_seq += 1
            uid = f"m{self._mailbox_seq}"
            state = _MailboxState(uid, name, session_id)
            self._mailboxes[uid] = state
        return ClusterMailbox(name, uid, state.queue)

    def release_session(self, session_id: int) -> None:
        """Drop every mailbox (and its log) belonging to ``session_id``."""
        with self._lock:
            doomed = [
                uid
                for uid, state in self._mailboxes.items()
                if state.session_id == session_id
            ]
            for uid in doomed:
                del self._mailboxes[uid]

    def route(self, uid: str, message: Any) -> None:
        """Deliver ``message`` to mailbox ``uid`` (log + local queue + claimants)."""
        with self._lock:
            self._route_locked(uid, message)

    def wake_mailbox(self, mailbox: ClusterMailbox, reason: str) -> None:
        """Rouse a coordinator-side receiver blocked on ``mailbox`` (tokens only —
        wake tokens are control-plane and never enter the replayable message log)."""
        mailbox.queue.put(WakeToken(reason))

    def submit(self, session: Any, name: str, job: WorkerJob) -> int:
        """Assign one worker job to a shard; returns its cluster job id.

        The job is pickled here, in the caller, so unpicklable kwargs fail
        loudly at submit time rather than as a hung run.
        """
        with self._lock:
            if self._stopped:
                raise ClusterError("cluster coordinator has been shut down")
            shared_keys: Dict[str, int] = {}
            bundle_names: List[str] = []
            for argument, obj in job.shared.items():
                key = self._shared_entry_locked(obj)
                shared_keys[argument] = key
                if isinstance(obj, SharedBundle):
                    bundle_names.append(obj.key)
            try:
                payload_blob = pickle.dumps(
                    (job.factory, encode_wire_kwargs(dict(job.kwargs)), shared_keys)
                )
            except ClusterError:
                raise
            except Exception as error:
                raise ClusterError(
                    f"worker job {name!r} is not picklable for the sockets "
                    "substrate; use module-level factories and picklable kwargs"
                ) from error
            self._job_seq += 1
            shard_key = "/".join(bundle_names + [f"s{session.session_id}", name])
            cluster_job = _ClusterJob(
                self._job_seq,
                session,
                name,
                shard_key,
                payload_blob,
                shared_keys,
                session.receive_timeout,
            )
            self._jobs[cluster_job.job_id] = cluster_job
            self._pending.add(cluster_job)
            self.stats.jobs_submitted += 1
        self._start_attempt(cluster_job)
        return cluster_job.job_id

    def abort_session(self, session: Any) -> None:
        """Abort every live attempt of ``session``'s jobs; settle never-ran jobs."""
        settled: List[_ClusterJob] = []
        with self._lock:
            for job in list(self._pending):
                if job.session is not session or job.done:
                    continue
                job.session_aborted = True
                if job in self._awaiting_worker:
                    self._awaiting_worker.remove(job)
                self._retries = [(due, j) for due, j in self._retries if j is not job]
                if not job.attempts:
                    job.done = True
                    self._pending.discard(job)
                    settled.append(job)
                    continue
                for attempt in job.attempts:
                    attempt.conn.enqueue(("abort", attempt.attempt_id))
        for job in settled:
            job.session._job_done(job.name, 0, 0)

    def cluster_stats(self) -> ClusterStats:
        with self._lock:
            snapshot = ClusterStats(**vars(self.stats))
        snapshot.workers_alive = self.directory.alive_count()
        snapshot.workers_total = self.directory.total_count()
        return snapshot

    def worker_ids(self, *, with_work: bool = False) -> List[int]:
        """Alive worker ids; with ``with_work`` only those running an attempt."""
        with self._lock:
            ids = []
            for worker_id, conn in self._conns.items():
                if conn.lost:
                    continue
                if with_work and not conn.attempt_ids:
                    continue
                ids.append(worker_id)
            return sorted(ids)

    def disconnect_worker(self, worker_id: int) -> bool:
        """Sever a worker's connection (fault injection: a network partition)."""
        with self._lock:
            conn = self._conns.get(worker_id)
        if conn is None:
            return False
        conn.close()  # the reader thread observes EOF and runs the death path
        return True

    # -------------------------------------------------------------- shared objects

    def _shared_entry_locked(self, obj: Any) -> int:
        # Same two dedup regimes as the pooled processes substrate: explicit
        # stable names for SharedBundles (one cache entry per language, ships to
        # each shard once ever), component identity for everything else.
        if isinstance(obj, SharedBundle):
            ident: Tuple = ("named", obj.key)
            payload = obj.payload
        else:
            ident = (
                tuple(id(part) for part in obj) if isinstance(obj, tuple) else (id(obj),)
            )
            payload = obj
        key = self._shared_ids.get(ident)
        if key is None:
            key = self._next_shared_key
            self._next_shared_key += 1
            self._shared_ids[ident] = key
            self._shared_objects[key] = payload
        return key

    def _shared_blob_locked(self, key: int) -> bytes:
        blob = self._shared_blobs.get(key)
        if blob is None:
            try:
                blob = pickle.dumps(self._shared_objects[key])
            except Exception as error:
                raise ClusterError(
                    "shared objects (grammar/plan bundles) must be picklable for "
                    "the sockets substrate; use module-level semantic functions"
                ) from error
            self._shared_blobs[key] = blob
        return blob

    def _shared_digest_locked(self, key: int) -> str:
        digest = self._shared_digests.get(key)
        if digest is None:
            from repro.store import content_digest

            digest = content_digest(self._shared_blob_locked(key))
            self._shared_digests[key] = digest
        return digest

    # ----------------------------------------------------------------- placement

    def _start_attempt(self, job: _ClusterJob) -> None:
        """Launch the next attempt of ``job`` on its preferred live shard."""
        request_worker = None
        with self._lock:
            if self._stopped or job.done:
                return
            conn = self._choose_worker_locked(job)
            if conn is None:
                if job not in self._awaiting_worker:
                    self._awaiting_worker.append(job)
                request_worker = self._worker_request
            else:
                self._launch_on_locked(job, conn)
        if request_worker is not None:
            request_worker()

    def _choose_worker_locked(self, job: _ClusterJob) -> Optional[_WorkerConn]:
        busy = {attempt.conn.info.worker_id for attempt in job.attempts}
        for node in self._ring.preference(job.key):
            worker_id = int(node)
            if worker_id in busy:
                continue
            conn = self._conns.get(worker_id)
            if conn is not None and not conn.lost:
                return conn
        return None

    def _launch_on_locked(self, job: _ClusterJob, conn: _WorkerConn) -> None:
        self._attempt_seq += 1
        attempt = _Attempt(self._attempt_seq, job, conn)
        job.attempts.append(attempt)
        job.attempts_started += 1
        job.last_started = attempt.started_at
        self._attempts[attempt.attempt_id] = attempt
        conn.attempt_ids.add(attempt.attempt_id)
        shared_blobs: Dict[int, Any] = {}
        for key in job.shared_keys.values():
            if key in conn.known_keys:
                continue
            blob = self._shared_blob_locked(key)
            digest = self._shared_digest_locked(key)
            if digest in conn.store_digests:
                # The worker holds these exact bytes in its persistent store:
                # ship a reference instead of the (often large) blob.  The key
                # is deliberately NOT marked known: resolution can still fail
                # worker-side (eviction race), and any other in-flight job on
                # this connection must then carry its own ref rather than
                # assume the bundle is cached.  Redundant refs are ~50 bytes
                # and the worker skips keys it has already resolved.
                shared_blobs[key] = wire.StoreRef(digest)
                if key not in conn.ref_keys:
                    conn.ref_keys.add(key)
                    self.stats.bundles_from_store += 1
            else:
                shared_blobs[key] = blob
                self.stats.bundles_shipped += 1
                conn.known_keys.add(key)
        conn.enqueue(
            ("job", attempt.attempt_id, job.name, job.payload_blob, shared_blobs,
             job.timeout)
        )

    def _backoff_delay(self, attempts_started: int) -> float:
        """Backoff before re-running a lost/timed-out attempt (RetryPolicy)."""
        return self._retry_policy.delay(max(1, attempts_started))

    # --------------------------------------------------------------- connections

    def _accept_loop(self) -> None:
        server = self._server
        while True:
            try:
                sock, addr = server.accept()
            except OSError:
                return  # server socket closed by shutdown()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock, addr),
                name=f"repro-cluster-conn-{addr[1]}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, sock: socket.socket, addr: Tuple) -> None:
        address = f"{addr[0]}:{addr[1]}"
        try:
            sock.settimeout(10.0)
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            greeting = wire.check_handshake(wire.recv_message(rfile))
            if greeting.get("role") != "worker":
                wire.send_message(wfile, wire.reject(
                    f"unsupported role {greeting.get('role')!r}"
                ))
                sock.close()
                return
        except (wire.ProtocolError, OSError) as error:
            try:
                wire.send_message(sock.makefile("wb"), wire.reject(str(error)))
            except Exception:
                pass
            sock.close()
            return
        info = self.directory.register(
            greeting.get("name") or address, address, greeting.get("capabilities", {})
        )
        conn = _WorkerConn(info, sock)
        conn.rfile, conn.wfile = rfile, wfile
        advertised = greeting.get("capabilities", {}).get("bundle_digests")
        if isinstance(advertised, (list, tuple, set)):
            conn.store_digests = {d for d in advertised if isinstance(d, str)}
        with self._lock:
            if self._stopped:
                sock.close()
                return
            self._conns[info.worker_id] = conn
            self._ring.add(str(info.worker_id))
            waiting = list(self._awaiting_worker)
            self._awaiting_worker = []
        conn.writer = threading.Thread(
            target=self._writer_loop, args=(conn,),
            name=f"repro-cluster-writer-{info.worker_id}", daemon=True,
        )
        conn.writer.start()
        try:
            wire.send_message(conn.wfile, wire.welcome(info.worker_id, self.heartbeat_interval))
        except (wire.ProtocolError, OSError) as error:
            self._worker_lost(conn, f"handshake reply failed: {error}")
            return
        sock.settimeout(None)
        with self._worker_joined:
            self._worker_joined.notify_all()
        for job in waiting:
            self._start_attempt(job)
        self._reader_loop(conn)

    def _writer_loop(self, conn: _WorkerConn) -> None:
        while True:
            frame = conn.outbound.get()
            if frame is None:
                return
            try:
                wire.send_message(conn.wfile, frame)
            except (wire.ProtocolError, OSError) as error:
                self._worker_lost(conn, f"send failed: {error}")
                return
            with self._lock:
                self.stats.frames_sent += 1

    def _reader_loop(self, conn: _WorkerConn) -> None:
        try:
            while True:
                frame = wire.recv_message(conn.rfile)
                self.directory.touch(conn.info.worker_id)
                with self._lock:
                    self.stats.frames_received += 1
                self._handle_frame(conn, frame)
        except (wire.ProtocolError, OSError) as error:
            self._worker_lost(conn, f"connection lost: {error}")

    # ------------------------------------------------------------ frame handling

    def _handle_frame(self, conn: _WorkerConn, frame: Tuple) -> None:
        tag = frame[0]
        if tag == "ping":
            return  # directory.touch already recorded the proof of life
        if tag == "claim":
            _, attempt_id, uid = frame
            with self._lock:
                attempt = self._attempts.get(attempt_id)
                state = self._mailboxes.get(uid)
                if attempt is None or state is None or attempt.state != "running":
                    return
                if attempt not in state.claimants:
                    state.claimants.append(attempt)
                    for message in state.log:
                        conn.enqueue(("deliver", attempt_id, uid, message))
            return
        if tag == "send":
            _, attempt_id, uid, message, size_bytes = frame
            with self._lock:
                attempt = self._attempts.get(attempt_id)
                if attempt is None:
                    return
                job = attempt.job
                attempt.sent += 1
                if attempt.sent <= job.forwarded:
                    # A prior (or concurrent) attempt of this deterministic job
                    # already delivered this very message: drop the duplicate.
                    self.stats.sends_suppressed += 1
                    return
                job.forwarded = attempt.sent
                # Worker-side send totals come back with the "done" frame (exactly
                # like the pooled processes substrate), so nothing is counted here.
                self._route_locked(uid, message)
            return
        if tag == "report":
            _, attempt_id, region_id, report = frame
            with self._lock:
                attempt = self._attempts.get(attempt_id)
                if attempt is None:
                    return
                session = attempt.job.session
            session._reports[region_id] = report
            return
        if tag == "done":
            _, attempt_id, messages, size_bytes = frame
            self._attempt_finished(attempt_id, messages, size_bytes)
            return
        if tag == "aborted":
            self._attempt_aborted(frame[1])
            return
        if tag == "error":
            _, attempt_id, detail = frame
            self._attempt_errored(attempt_id, detail)
            return
        if tag == "bundle_miss":
            _, attempt_id, shared_key, digest = frame
            self._bundle_missed(attempt_id, shared_key, digest)
            return

    def _retire_attempt_locked(self, attempt: _Attempt, state: str) -> None:
        attempt.state = state
        self._attempts.pop(attempt.attempt_id, None)
        attempt.conn.attempt_ids.discard(attempt.attempt_id)
        if attempt in attempt.job.attempts:
            attempt.job.attempts.remove(attempt)
        for mailbox in self._mailboxes.values():
            if attempt in mailbox.claimants:
                mailbox.claimants.remove(attempt)

    def _attempt_finished(self, attempt_id: int, messages: int, size_bytes: int) -> None:
        with self._lock:
            attempt = self._attempts.get(attempt_id)
            if attempt is None:
                return
            job = attempt.job
            self._retire_attempt_locked(attempt, "done")
            if job.done:
                return
            job.done = True
            self._pending.discard(job)
            self.stats.jobs_completed += 1
            for sibling in list(job.attempts):
                sibling.conn.enqueue(("abort", sibling.attempt_id))
            session = job.session
        session._job_done(job.name, messages, size_bytes)

    def _attempt_aborted(self, attempt_id: int) -> None:
        settle = False
        with self._lock:
            attempt = self._attempts.get(attempt_id)
            if attempt is None:
                return
            job = attempt.job
            self._retire_attempt_locked(attempt, "aborted")
            # Settle completion accounting exactly once for session-initiated
            # aborts; timeout-retired attempts and speculative losers are not
            # completions — their job either retries or already finished.
            if not job.done and job.session_aborted and not job.attempts:
                job.done = True
                self._pending.discard(job)
                settle = True
            session = job.session
        if settle:
            session._job_done(job.name, 0, 0)

    def _bundle_missed(self, attempt_id: int, shared_key: int, digest: str) -> None:
        """A worker could not resolve a shipped :class:`wire.StoreRef`.

        Benign and self-correcting: stop advertising that digest for this
        worker, forget that the connection "knows" the shared key, and relaunch
        — the next attempt ships real bytes.  The miss is not a body error (no
        job code ran) and not a worker death, so it neither fails the job nor
        burns one of its retry attempts.
        """
        relaunch: Optional[_ClusterJob] = None
        with self._lock:
            attempt = self._attempts.get(attempt_id)
            if attempt is None:
                return
            job = attempt.job
            attempt.conn.store_digests.discard(digest)
            attempt.conn.known_keys.discard(shared_key)
            attempt.conn.ref_keys.discard(shared_key)
            self._retire_attempt_locked(attempt, "lost")
            self.stats.bundle_misses += 1
            if job.done or job.session_aborted or job.attempts:
                return
            job.attempts_started = max(0, job.attempts_started - 1)
            relaunch = job
        if relaunch is not None:
            self._start_attempt(relaunch)

    def _attempt_errored(self, attempt_id: int, detail: str) -> None:
        """A body raised: deterministic failure, so retrying cannot help."""
        with self._lock:
            attempt = self._attempts.get(attempt_id)
            if attempt is None:
                return
            job = attempt.job
            self._retire_attempt_locked(attempt, "done")
            if job.done:
                return
            job.done = True
            self._pending.discard(job)
            self.stats.jobs_failed += 1
            for sibling in list(job.attempts):
                sibling.conn.enqueue(("abort", sibling.attempt_id))
            session = job.session
        session._job_failed(job.name, detail)

    # ------------------------------------------------------------ fault handling

    def _worker_lost(self, conn: _WorkerConn, reason: str) -> None:
        """A worker died (socket loss) or was declared dead (heartbeat expiry):
        reassign its orphaned attempts with backoff, or fail jobs out of retries."""
        settled: List[_ClusterJob] = []
        failed: List[Tuple[_ClusterJob, str]] = []
        need_worker = False
        with self._lock:
            if conn.lost:
                return
            conn.lost = True
            self.directory.mark_dead(conn.info.worker_id, reason)
            self._ring.remove(str(conn.info.worker_id))
            self._conns.pop(conn.info.worker_id, None)
            conn.outbound.put(None)  # retire the writer thread
            orphaned = [
                self._attempts[attempt_id]
                for attempt_id in list(conn.attempt_ids)
                if attempt_id in self._attempts
            ]
            for attempt in orphaned:
                self._retire_attempt_locked(attempt, "lost")
            jobs = {attempt.job for attempt in orphaned}
            for job in jobs:
                if job.done:
                    continue
                if job.session_aborted:
                    if not job.attempts:
                        job.done = True
                        self._pending.discard(job)
                        settled.append(job)
                    continue
                if job.attempts:
                    continue  # a speculative sibling is still running the region
                if job.attempts_started >= self.max_attempts:
                    job.done = True
                    self._pending.discard(job)
                    self.stats.jobs_failed += 1
                    failed.append(
                        (job, f"{conn.info.label} lost ({reason}); "
                              f"{job.attempts_started} attempt(s) exhausted")
                    )
                    continue
                self.stats.reassignments += 1
                due = time.monotonic() + self._backoff_delay(job.attempts_started)
                self._retries.append((due, job))
                need_worker = True
        conn.close()
        if need_worker and self._worker_request is not None:
            self._worker_request()
        for job in settled:
            job.session._job_done(job.name, 0, 0)
        for job, detail in failed:
            job.session._job_failed(job.name, detail)

    def _monitor_loop(self) -> None:
        """Heartbeat expiry, due retries, stragglers and job timeouts."""
        while True:
            with self._lock:
                if self._stopped:
                    return
            now = time.monotonic()

            for info in self.directory.expired(self.heartbeat_timeout):
                with self._lock:
                    conn = self._conns.get(info.worker_id)
                    self.stats.heartbeat_timeouts += 1
                if conn is not None:
                    self._worker_lost(conn, "heartbeat timeout")

            due_jobs: List[_ClusterJob] = []
            with self._lock:
                still_waiting = []
                for due, job in self._retries:
                    if due <= now:
                        due_jobs.append(job)
                    else:
                        still_waiting.append((due, job))
                self._retries = still_waiting
            for job in due_jobs:
                self._start_attempt(job)

            speculate: List[_ClusterJob] = []
            timed_out: List[_Attempt] = []
            with self._lock:
                for job in self._pending:
                    if job.done or job.session_aborted or not job.attempts:
                        continue
                    if (
                        self.speculate_after is not None
                        and not job.speculated
                        and len(job.attempts) == 1
                        and now - job.last_started > self.speculate_after
                    ):
                        speculate.append(job)
                    if self.job_timeout is not None:
                        timed_out.extend(
                            attempt for attempt in job.attempts
                            if now - attempt.started_at > self.job_timeout
                        )
            for job in speculate:
                with self._lock:
                    if job.done or job.speculated:
                        continue
                    conn = self._choose_worker_locked(job)
                    if conn is None:
                        continue
                    job.speculated = True
                    self.stats.speculative_attempts += 1
                    self._launch_on_locked(job, conn)
            for attempt in timed_out:
                self._retry_timed_out(attempt)

            time.sleep(0.02)

    def _retry_timed_out(self, attempt: _Attempt) -> None:
        """Coordinator-side timeout: retire one overdue attempt, retry with backoff."""
        failed_detail = None
        with self._lock:
            if attempt.attempt_id not in self._attempts:
                return
            job = attempt.job
            attempt.conn.enqueue(("abort", attempt.attempt_id))
            self._retire_attempt_locked(attempt, "aborted")
            if job.done or job.session_aborted or job.attempts:
                return
            self.stats.timeout_retries += 1
            if job.attempts_started >= self.max_attempts:
                job.done = True
                self._pending.discard(job)
                self.stats.jobs_failed += 1
                failed_detail = (
                    f"attempt timed out after {self.job_timeout:.1f}s; "
                    f"{job.attempts_started} attempt(s) exhausted"
                )
            else:
                self.stats.reassignments += 1
                due = time.monotonic() + self._backoff_delay(job.attempts_started)
                self._retries.append((due, job))
        if failed_detail is not None:
            job.session._job_failed(job.name, failed_detail)

    # ----------------------------------------------------------------- routing

    def _route_locked(self, uid: str, message: Any) -> None:
        state = self._mailboxes.get(uid)
        if state is None:
            return  # a late message for a released session: drop it
        state.log.append(message)
        state.queue.put(message)
        for attempt in state.claimants:
            if attempt.state == "running":
                attempt.conn.enqueue(("deliver", attempt.attempt_id, uid, message))
