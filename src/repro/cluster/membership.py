"""Cluster membership: who is in the worker fleet, and who is still alive.

Transport-neutral bookkeeping shared by the coordinator: a
:class:`WorkerDirectory` assigns worker ids, tracks last-heard-from times fed by
heartbeats (or any frame — traffic is proof of life), and answers the two
questions fault tolerance needs: *which workers are alive right now* and *which
workers have gone silent past the heartbeat timeout*.  Actual connection
handling (sockets, reader threads) stays in :mod:`repro.cluster.coordinator`;
death by connection loss and death by heartbeat expiry both funnel through
:meth:`WorkerDirectory.mark_dead`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class WorkerInfo:
    """One worker's membership record."""

    worker_id: int
    name: str
    address: str
    capabilities: Dict[str, Any] = field(default_factory=dict)
    connected_at: float = 0.0
    last_seen: float = 0.0
    alive: bool = True
    #: Why the worker left the fleet ("" while alive).
    death_reason: str = ""

    @property
    def label(self) -> str:
        return f"worker {self.worker_id} ({self.name} @ {self.address})"


class WorkerDirectory:
    """Thread-safe registry of every worker that ever joined the cluster."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._workers: Dict[int, WorkerInfo] = {}
        self._next_id = 0

    def register(self, name: str, address: str, capabilities: Dict[str, Any]) -> WorkerInfo:
        now = time.monotonic()
        with self._lock:
            worker_id = self._next_id
            self._next_id += 1
            info = WorkerInfo(
                worker_id=worker_id,
                name=name,
                address=address,
                capabilities=dict(capabilities),
                connected_at=now,
                last_seen=now,
            )
            self._workers[worker_id] = info
        return info

    def touch(self, worker_id: int) -> None:
        """Record proof of life (a heartbeat or any other frame)."""
        with self._lock:
            info = self._workers.get(worker_id)
            if info is not None:
                info.last_seen = time.monotonic()

    def mark_dead(self, worker_id: int, reason: str) -> Optional[WorkerInfo]:
        """Take ``worker_id`` out of the fleet; returns its record the first time."""
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None or not info.alive:
                return None
            info.alive = False
            info.death_reason = reason
            return info

    def get(self, worker_id: int) -> Optional[WorkerInfo]:
        with self._lock:
            return self._workers.get(worker_id)

    def alive(self) -> List[WorkerInfo]:
        with self._lock:
            return [info for info in self._workers.values() if info.alive]

    def alive_count(self) -> int:
        return len(self.alive())

    def total_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def expired(self, timeout: float) -> List[WorkerInfo]:
        """Alive workers that have been silent for longer than ``timeout`` seconds."""
        cutoff = time.monotonic() - timeout
        with self._lock:
            return [
                info
                for info in self._workers.values()
                if info.alive and info.last_seen < cutoff
            ]
