"""Low-level tree-splitting utilities."""

from __future__ import annotations

from typing import List, Optional

from repro.grammar.symbols import Nonterminal
from repro.tree.node import ParseTreeNode


def splittable_nodes(
    root: ParseTreeNode,
    min_size: Optional[int] = None,
    scale: float = 1.0,
) -> List[ParseTreeNode]:
    """Nodes (excluding the root) at which the grammar allows the tree to be split.

    A node qualifies when its symbol is declared splittable and its linearized size is
    at least ``min_size`` (when given) or at least ``scale`` times the symbol's declared
    minimum split size.
    """
    candidates: List[ParseTreeNode] = []
    for node in root.walk():
        if node is root or node.is_terminal:
            continue
        symbol = node.symbol
        assert isinstance(symbol, Nonterminal)
        if not symbol.splittable:
            continue
        threshold = min_size if min_size is not None else symbol.min_split_size * scale
        if node.linearized_size() >= threshold:
            candidates.append(node)
    return candidates


def detach_subtree(node: ParseTreeNode) -> ParseTreeNode:
    """Detach ``node`` from its parent, leaving a *hole* placeholder in its place.

    Returns the hole node: a childless, production-less node carrying the same
    nonterminal symbol.  The detached subtree becomes a standalone tree (its parent
    pointer is cleared) and can be evaluated independently; the hole's synthesized
    attributes must later be supplied from that remote evaluation, while its inherited
    attributes are computed by the remaining (local) part of the tree and must be
    exported to whoever evaluates the detached subtree.
    """
    if node.parent is None:
        raise ValueError("cannot detach the root of a tree")
    if node.is_terminal:
        raise ValueError("cannot detach a terminal leaf")
    parent = node.parent
    index = node.child_index
    assert index is not None
    hole = ParseTreeNode(node.symbol)
    hole.parent = parent
    hole.child_index = index
    parent.children[index - 1] = hole
    node.parent = None
    node.child_index = None
    return hole
