"""Parse-tree partitioning for parallel evaluation.

The parser "builds the syntax tree, divides it into subtrees and sends them to the
attribute evaluators".  Subtrees may only be detached at nonterminals the grammar marks
as splittable, and only when the subtree's linearized representation is at least the
declared minimum size (scaled by a runtime argument so decompositions of different
granularities can be produced for different machine counts).
"""

from repro.partition.splitter import detach_subtree, splittable_nodes
from repro.partition.decomposition import (
    Region,
    DecompositionPlan,
    plan_decomposition,
)

__all__ = [
    "detach_subtree",
    "splittable_nodes",
    "Region",
    "DecompositionPlan",
    "plan_decomposition",
]
