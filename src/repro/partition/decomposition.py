"""Decomposition planning: choose which subtrees go to which evaluator.

The planner reproduces the behaviour described in the paper: the grammar fixes *where*
the tree may be split (splittable nonterminals with a minimum subtree size), and a
runtime argument — here the number of machines — scales the effective minimum size so
that the tree is cut into roughly equally sized regions, one per evaluator.  Figure 7 of
the paper ("Source Program Decomposition") is regenerated directly from the resulting
:class:`DecompositionPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.grammar.symbols import Nonterminal
from repro.tree.node import ParseTreeNode, node_wire_size


@dataclass
class Region:
    """One region of the decomposed tree, evaluated by one evaluator process.

    Region 0 is always the *root region*, kept by the evaluator co-located with (or
    closest to) the parser; nested regions hang off it in a region tree that mirrors the
    evaluator process tree of the paper.
    """

    region_id: int
    root: ParseTreeNode
    parent_region: Optional[int]
    size: int = 0                       # abstract linearized bytes owned by this region
    node_count: int = 0
    child_regions: List[int] = field(default_factory=list)
    label: str = ""

    @property
    def is_root_region(self) -> bool:
        return self.parent_region is None


@dataclass
class DecompositionPlan:
    """The result of :func:`plan_decomposition`."""

    regions: List[Region]
    total_size: int
    threshold: int

    @property
    def region_count(self) -> int:
        return len(self.regions)

    def region_roots(self) -> Dict[int, ParseTreeNode]:
        return {region.region_id: region.root for region in self.regions}

    def holes_of(self, region_id: int) -> Dict[int, int]:
        """Map from detached child-root node ids to their region ids (for linearize)."""
        region = self.regions[region_id]
        return {
            self.regions[child].root.node_id: child for child in region.child_regions
        }

    def balance(self) -> float:
        """Largest region size divided by the ideal (total / region count); 1.0 = perfect."""
        if not self.regions:
            return 1.0
        ideal = self.total_size / len(self.regions)
        if ideal == 0:
            return 1.0
        return max(region.size for region in self.regions) / ideal

    def describe(self) -> str:
        """Readable table, in the spirit of the paper's Figure 7."""
        lines = [
            f"decomposition into {len(self.regions)} regions "
            f"(threshold {self.threshold} bytes, balance {self.balance():.2f}):"
        ]
        for region in self.regions:
            parent = (
                "-" if region.parent_region is None else str(region.parent_region)
            )
            lines.append(
                f"  region {region.label or region.region_id}: root={region.root.symbol.name} "
                f"size={region.size} nodes={region.node_count} parent={parent} "
                f"children={[self.regions[c].label or c for c in region.child_regions]}"
            )
        return "\n".join(lines)


def _region_labels(count: int) -> List[str]:
    """a, b, c, ... like Figure 7 of the paper."""
    labels = []
    for index in range(count):
        label = ""
        value = index
        while True:
            label = chr(ord("a") + value % 26) + label
            value = value // 26 - 1
            if value < 0:
                break
        labels.append(label)
    return labels


def plan_decomposition(
    root: ParseTreeNode,
    machines: int,
    min_size: Optional[int] = None,
    scale: float = 1.0,
) -> DecompositionPlan:
    """Decompose the tree rooted at ``root`` into at most ``machines`` regions.

    :param machines: number of evaluator machines available (>= 1).
    :param min_size: explicit minimum region size (abstract bytes).  When omitted, the
        threshold is ``total_size / machines`` scaled by ``scale`` — the runtime
        granularity knob the paper describes — but never below a splittable symbol's own
        declared minimum.
    :param scale: multiplier applied to the automatically chosen threshold.
    """
    if machines < 1:
        raise ValueError("machines must be >= 1")

    # One bottom-up pass computes every node's linearized size (own header plus the
    # children's totals); calling ``node.linearized_size()`` per candidate would walk
    # each subtree again and make planning quadratic in the tree size.
    post_order: List[ParseTreeNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        post_order.append(node)
        stack.extend(node.children)
    post_order.reverse()
    subtree_size: Dict[int, int] = {}
    subtree_nodes: Dict[int, int] = {}
    for node in post_order:
        total = node_wire_size(node)
        count = 1
        for child in node.children:
            total += subtree_size[child.node_id]
            count += subtree_nodes[child.node_id]
        subtree_size[node.node_id] = total
        subtree_nodes[node.node_id] = count

    total_size = subtree_size[root.node_id]
    if min_size is not None:
        threshold = int(min_size)
    else:
        threshold = max(1, int(total_size / machines * scale))

    split_nodes: List[ParseTreeNode] = []
    remaining_splits = machines - 1

    # Effective size of a node = linearized size minus the sizes of detached descendants.
    # We traverse bottom-up (post-order) so nested splittable subtrees are considered
    # before their ancestors, mirroring the parser's behaviour of shipping the deepest
    # oversized subtrees first.
    detached_size: Dict[int, int] = {}

    def effective_size(node: ParseTreeNode) -> int:
        return subtree_size[node.node_id] - detached_size.get(node.node_id, 0)

    chosen: Set[int] = set()
    for node in post_order:
        if remaining_splits <= 0:
            break
        if node is root or node.is_terminal:
            continue
        symbol = node.symbol
        assert isinstance(symbol, Nonterminal)
        if not symbol.splittable:
            continue
        size = effective_size(node)
        if size < max(threshold, symbol.min_split_size):
            continue
        chosen.add(node.node_id)
        split_nodes.append(node)
        remaining_splits -= 1
        # Propagate the detached size up to every ancestor.
        ancestor = node.parent
        while ancestor is not None:
            detached_size[ancestor.node_id] = detached_size.get(ancestor.node_id, 0) + size
            ancestor = ancestor.parent

    # Build regions: region 0 is the root region; others in the order their roots appear
    # in a pre-order walk (stable, readable labelling).
    ordered_split_nodes = [
        node for node in root.walk() if node.node_id in chosen
    ]
    regions: List[Region] = [Region(0, root, None)]
    region_of_root_node: Dict[int, int] = {root.node_id: 0}
    for node in ordered_split_nodes:
        region_id = len(regions)
        regions.append(Region(region_id, node, None))
        region_of_root_node[node.node_id] = region_id

    # Assign parent regions and sizes.
    for region in regions[1:]:
        ancestor = region.root.parent
        while ancestor is not None and ancestor.node_id not in region_of_root_node:
            ancestor = ancestor.parent
        parent_id = region_of_root_node[ancestor.node_id] if ancestor is not None else 0
        region.parent_region = parent_id
        regions[parent_id].child_regions.append(region.region_id)

    # A region owns its root's subtree minus the subtrees detached into child
    # regions, so its size and node count fall out of the precomputed totals.
    for region in reversed(regions):
        size = subtree_size[region.root.node_id]
        nodes = subtree_nodes[region.root.node_id]
        for child_id in region.child_regions:
            size -= subtree_size[regions[child_id].root.node_id]
            nodes -= subtree_nodes[regions[child_id].root.node_id]
        region.size = size
        region.node_count = nodes

    for region, label in zip(regions, _region_labels(len(regions))):
        region.label = label

    return DecompositionPlan(regions, total_size, threshold)
