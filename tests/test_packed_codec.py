"""Round-trip parity of the packed array-of-ints tree codec with the record form."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.exprlang.evaluator import random_expression_source
from repro.exprlang.frontend import parse_expression
from repro.exprlang.grammar import expression_grammar
from repro.partition.decomposition import plan_decomposition
from repro.pascal import PascalCompiler
from repro.pascal.programs import (
    FACTORIAL,
    HELLO,
    NESTED,
    RECORDS,
    SORTING,
    SUMMATION,
    generate_program,
)
from repro.tree.linearize import (
    PackedTree,
    codec_for,
    delinearize,
    linearize,
    pack,
    pack_linearized,
    rebuild,
    unpack,
    unpack_linearized,
)

PASCAL_EXAMPLES = {
    "hello": HELLO,
    "factorial": FACTORIAL,
    "summation": SUMMATION,
    "sorting": SORTING,
    "records": RECORDS,
    "nested": NESTED,
}


@pytest.fixture(scope="module")
def pascal():
    return PascalCompiler()


def _strip_node_ids(records):
    """Hole records carry the sender's node ids, which fresh trees cannot reproduce."""
    return [
        (record[0], record[1], record[2]) if record[0] == "H" else record
        for record in records
    ]


def _relinearize(grammar, root, holes_by_region):
    """Linearize a rebuilt tree, re-detaching its holes at their new node ids."""
    return linearize(
        root, {node.node_id: region for region, node in holes_by_region.items()}
    )


def assert_codec_parity(grammar, root, holes=None):
    """The packed codec and the record form must encode and rebuild identically."""
    linearized = linearize(root, holes)
    packed = pack(grammar, root, holes)
    # Identical record sequences and identical abstract transmission size.
    assert len(packed) == len(linearized)
    assert packed.size_bytes() == linearized.size_bytes()
    assert packed.root_symbol == linearized.root_symbol
    assert unpack_linearized(grammar, packed).records == linearized.records
    converted = pack_linearized(grammar, linearized)
    assert converted.codes == packed.codes
    assert converted.values == packed.values
    assert converted.hole_meta == packed.hole_meta
    assert converted.size_bytes() == packed.size_bytes()
    # Identical rebuilt trees (modulo fresh node ids).
    rebuilt_ref, holes_ref = delinearize(grammar, linearized)
    rebuilt_packed, holes_packed = unpack(grammar, packed)
    assert sorted(holes_ref) == sorted(holes_packed)
    assert _strip_node_ids(
        _relinearize(grammar, rebuilt_ref, holes_ref).records
    ) == _strip_node_ids(_relinearize(grammar, rebuilt_packed, holes_packed).records)
    # The dispatch helper picks the right decoder for either form.
    for wire in (linearized, packed):
        root_again, holes_again = rebuild(grammar, wire)
        assert sorted(holes_again) == sorted(holes_ref)
        assert root_again.symbol.name == root.symbol.name


class TestPascalExamplePrograms:
    @pytest.mark.parametrize("name", sorted(PASCAL_EXAMPLES))
    def test_whole_tree_round_trip(self, pascal, name):
        tree = pascal.parse(PASCAL_EXAMPLES[name])
        assert_codec_parity(pascal.grammar, tree)

    @pytest.mark.parametrize("name", sorted(PASCAL_EXAMPLES))
    def test_regions_with_holes_round_trip(self, pascal, name):
        """Every region of every example decomposition, including hole records."""
        tree = pascal.parse(PASCAL_EXAMPLES[name])
        decomposition = plan_decomposition(tree, 4)
        for region in decomposition.regions:
            holes = decomposition.holes_of(region.region_id)
            assert_codec_parity(pascal.grammar, region.root, holes)

    def test_generated_program_with_holes(self, pascal):
        tree = pascal.parse(
            generate_program(procedures=12, statements_per_procedure=4, seed=3)
        )
        decomposition = plan_decomposition(tree, 6)
        assert decomposition.region_count > 1
        saw_hole = False
        for region in decomposition.regions:
            holes = decomposition.holes_of(region.region_id)
            saw_hole = saw_hole or bool(holes)
            assert_codec_parity(pascal.grammar, region.root, holes)
        assert saw_hole, "decomposition produced no holes; the test lost its point"


class TestRandomizedFuzz:
    def test_random_trees_round_trip(self):
        """Randomized trees with randomized hole choices survive the codec."""
        grammar = expression_grammar(min_split_size=1)
        rng = random.Random(20260729)
        for round_number in range(25):
            source = random_expression_source(
                rng.randint(3, 60), seed=rng.randint(0, 10_000), nesting=rng.randint(1, 7)
            )
            tree = parse_expression(source, grammar)
            candidates = [
                node
                for node in tree.walk()
                if node is not tree
                and node.symbol.is_nonterminal
                and node.symbol.splittable
            ]
            rng.shuffle(candidates)
            holes = {}
            taken = set()
            for region, node in enumerate(candidates[: rng.randint(0, 3)], start=1):
                # Nested holes are legal only if no ancestor is already detached.
                ancestor, nested = node.parent, False
                while ancestor is not None:
                    if ancestor.node_id in taken:
                        nested = True
                        break
                    ancestor = ancestor.parent
                if nested:
                    continue
                holes[node.node_id] = region
                taken.add(node.node_id)
            assert_codec_parity(grammar, tree, holes)

    def test_packed_tree_pickle_round_trip(self):
        grammar = expression_grammar(min_split_size=1)
        tree = parse_expression("let x = 3 in 1 + 2 * x ni", grammar)
        packed = pack(grammar, tree)
        clone = pickle.loads(pickle.dumps(packed))
        assert isinstance(clone, PackedTree)
        assert clone.codes == packed.codes
        assert clone.values == packed.values
        assert clone.hole_meta == packed.hole_meta
        assert clone.root_symbol == packed.root_symbol
        assert clone.size_bytes() == packed.size_bytes()
        assert unpack_linearized(grammar, clone).records == linearize(tree).records


class TestCodecTables:
    def test_codec_is_cached_per_grammar(self):
        grammar = expression_grammar()
        assert codec_for(grammar) is codec_for(grammar)

    def test_truncated_packed_tree_rejected(self):
        grammar = expression_grammar()
        tree = parse_expression("1 + 2", grammar)
        packed = pack(grammar, tree)
        broken = PackedTree(
            packed.codes[:-1], packed.values, packed.hole_meta, packed.root_symbol, 0
        )
        with pytest.raises(ValueError):
            unpack(grammar, broken)

    def test_trailing_records_rejected(self):
        grammar = expression_grammar()
        tree = parse_expression("1", grammar)
        packed = pack(grammar, tree)
        broken = PackedTree(
            packed.codes + packed.codes,
            packed.values + packed.values,
            packed.hole_meta,
            packed.root_symbol,
            0,
        )
        with pytest.raises(ValueError):
            unpack(grammar, broken)


class TestCorruptPackedTrees:
    """Corrupt or mismatched wire data must raise clear ValueErrors, never IndexErrors."""

    def _packed(self, source="let x = 3 in 1 + 2 * x ni"):
        grammar = expression_grammar()
        tree = parse_expression(source, grammar)
        return grammar, pack(grammar, tree)

    def test_production_index_out_of_range(self):
        grammar, packed = self._packed()
        codes = packed.codes[:]
        codes[0] = (len(grammar.productions) + 7) << 2  # _TAG_PRODUCTION
        broken = PackedTree(codes, packed.values, packed.hole_meta, packed.root_symbol, 0)
        with pytest.raises(ValueError, match="production index .* out of range"):
            unpack(grammar, broken)

    def test_terminal_index_out_of_range(self):
        grammar, packed = self._packed()
        codes = packed.codes[:]
        terminal_positions = [i for i, code in enumerate(codes) if code & 3 == 1]
        codes[terminal_positions[0]] = ((len(grammar.terminals) + 3) << 2) | 1
        broken = PackedTree(codes, packed.values, packed.hole_meta, packed.root_symbol, 0)
        with pytest.raises(ValueError, match="terminal index .* out of range"):
            unpack(grammar, broken)

    def test_negative_index_rejected_not_wrapped(self):
        """A negative interned index must not silently wrap around Python lists."""
        grammar, packed = self._packed()
        codes = packed.codes[:]
        codes[0] = (-2 << 2)
        broken = PackedTree(codes, packed.values, packed.hole_meta, packed.root_symbol, 0)
        with pytest.raises(ValueError, match="out of range"):
            unpack(grammar, broken)

    def test_missing_token_values(self):
        grammar, packed = self._packed()
        broken = PackedTree(packed.codes, [], packed.hole_meta, packed.root_symbol, 0)
        with pytest.raises(ValueError, match="missing token values"):
            unpack(grammar, broken)

    def test_missing_hole_metadata(self):
        grammar = expression_grammar(min_split_size=1)
        tree = parse_expression("let x = 1 in let y = 2 in x + y ni ni", grammar)
        candidates = [
            node
            for node in tree.walk()
            if node is not tree and node.symbol.is_nonterminal and node.symbol.splittable
        ]
        packed = pack(grammar, tree, {candidates[0].node_id: 1})
        from array import array

        broken = PackedTree(packed.codes, packed.values, array("q"), packed.root_symbol, 0)
        with pytest.raises(ValueError, match="missing hole metadata"):
            unpack(grammar, broken)

    def test_mismatched_grammar_generation(self):
        """Unpacking against a structurally different grammar raises, not IndexErrors.

        A tree packed against the full expression grammar decodes against a toy
        grammar with far fewer productions; every failure mode must surface as a
        ValueError naming the problem.
        """
        grammar, packed = self._packed()
        from repro.grammar.builder import GrammarBuilder

        b = GrammarBuilder("tiny")
        b.terminal("NUMBER", value_attribute="value")
        b.nonterminal("s", synthesized=["value"])
        b.production("s -> NUMBER")
        b.start("s")
        tiny = b.build(validate=False)
        with pytest.raises(ValueError):
            unpack(tiny, packed)
