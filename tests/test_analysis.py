"""Tests for dependency analysis, circularity detection, and ordered evaluation plans."""

from __future__ import annotations

import pytest

from repro.analysis.cycles import CircularGrammarError, check_noncircular
from repro.analysis.dependencies import (
    DependencyGraph,
    induced_dependencies,
    production_dependency_graph,
)
from repro.analysis.ordered import NotOrderedError, compute_partitions
from repro.analysis.visit_sequences import (
    EvalInstruction,
    VisitChildInstruction,
    build_evaluation_plan,
)
from repro.grammar.builder import GrammarBuilder, Rule
from repro.grammar.productions import AttributeRef


class TestDependencyGraph:
    def test_add_edge_idempotent(self):
        graph = DependencyGraph()
        assert graph.add_edge("a", "b")
        assert not graph.add_edge("a", "b")
        assert graph.edge_count() == 1

    def test_successors_and_predecessors(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")
        assert graph.successors("a") == {"b", "c"}
        assert graph.predecessors("c") == {"a"}
        assert graph.successors("missing") == frozenset()

    def test_transitive_closure(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        closure = graph.transitive_closure()
        assert closure.has_edge("a", "c")
        assert not graph.has_edge("a", "c")

    def test_topological_order(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("a", "c")
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topological_order_detects_cycle(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_find_cycle(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "a")
        cycle = graph.find_cycle()
        assert len(cycle) >= 3
        assert set(cycle) <= {"a", "b", "c"}

    def test_find_cycle_on_acyclic_graph(self):
        graph = DependencyGraph()
        graph.add_edge("a", "b")
        assert graph.find_cycle() == []


class TestProductionDependencies:
    def test_local_graph_edges(self, expr_grammar):
        production = next(
            p for p in expr_grammar.productions if p.label == "expr -> expr + expr"
        )
        graph = production_dependency_graph(production)
        assert graph.has_edge(AttributeRef(1, "value"), AttributeRef(0, "value"))
        assert graph.has_edge(AttributeRef(3, "value"), AttributeRef(0, "value"))
        assert graph.has_edge(AttributeRef(0, "stab"), AttributeRef(1, "stab"))

    def test_induced_dependencies_of_expression_grammar(self, expr_grammar):
        ids = induced_dependencies(expr_grammar)
        # The value of an expression can depend on its symbol table (via IDENTIFIER).
        assert ids["expr"].has_edge("stab", "value")
        assert ids["block"].has_edge("stab", "value")
        # Never the other way around.
        assert not ids["expr"].has_edge("value", "stab")


def _two_pass_grammar():
    """A grammar with the classic two-pass (declarations up, environment down) shape."""
    builder = GrammarBuilder("twopass")
    builder.name_terminals("ID")
    builder.nonterminal("root", synthesized=["out"])
    builder.nonterminal(
        "item", synthesized=["decls", "code"], inherited=["env"]
    )
    builder.production(
        "root -> item",
        Rule("$1.env", ["$1.decls"], lambda d: {"env": d}, name="make_env"),
        Rule("$$.out", ["$1.code"]),
    )
    builder.production(
        "item -> ID",
        Rule("$$.decls", ["$1.string"], lambda s: [s], name="decls"),
        Rule("$$.code", ["$$.env", "$1.string"], lambda env, s: f"{env}:{s}", name="code"),
    )
    return builder.build(start="root")


class TestPartitions:
    def test_expression_grammar_single_visit(self, expr_grammar):
        partitions = compute_partitions(expr_grammar)
        expr = partitions["expr"]
        assert expr.visit_count == 1
        assert expr.inherited_of(1) == {"stab"}
        assert expr.synthesized_of(1) == {"value"}
        assert expr.visit_of("stab") == 1
        assert expr.visit_of("value") == 1

    def test_two_pass_grammar_needs_two_visits(self):
        grammar = _two_pass_grammar()
        partitions = compute_partitions(grammar)
        item = partitions["item"]
        assert item.visit_count == 2
        assert item.synthesized_of(1) == {"decls"}
        assert item.inherited_of(2) == {"env"}
        assert item.synthesized_of(2) == {"code"}

    def test_static_dependencies(self):
        grammar = _two_pass_grammar()
        partitions = compute_partitions(grammar)
        deps = partitions["item"].static_dependencies()
        assert deps["decls"] == frozenset()
        assert deps["code"] == {"env"}

    def test_attribute_less_nonterminal_gets_one_visit(self):
        builder = GrammarBuilder("plain")
        builder.name_terminals("ID")
        builder.nonterminal("root", synthesized=["n"])
        builder.nonterminal("filler")
        builder.production("root -> filler ID", Rule("$$.n", ["$2.string"], len))
        builder.production("filler -> ID")
        grammar = builder.build(start="root")
        partitions = compute_partitions(grammar)
        assert partitions["filler"].visit_count == 1

    def test_unknown_attribute_visit_lookup(self, expr_grammar):
        partitions = compute_partitions(expr_grammar)
        with pytest.raises(KeyError):
            partitions["expr"].visit_of("nonexistent")


class TestCircularity:
    def test_expression_grammar_not_circular(self, expr_grammar):
        check_noncircular(expr_grammar)  # should not raise

    def test_circular_grammar_rejected(self):
        builder = GrammarBuilder("circular")
        builder.name_terminals("ID")
        builder.nonterminal("root", synthesized=["out"])
        builder.nonterminal("x", synthesized=["s"], inherited=["i"])
        builder.production(
            "root -> x",
            Rule("$1.i", ["$1.s"]),
            Rule("$$.out", ["$1.s"]),
        )
        builder.production(
            "x -> ID",
            Rule("$$.s", ["$$.i"]),
        )
        grammar = builder.build(start="root")
        with pytest.raises(CircularGrammarError):
            check_noncircular(grammar)


class TestVisitSequences:
    def test_segments_cover_all_rules(self, expr_grammar, expr_plan):
        for production in expr_grammar.productions:
            sequence = expr_plan.sequences[production.index]
            eval_instructions = [
                instruction
                for segment in sequence.segments
                for instruction in segment
                if isinstance(instruction, EvalInstruction)
            ]
            assert len(eval_instructions) == len(production.rules)
            assert {i.rule_index for i in eval_instructions} == set(
                range(len(production.rules))
            )

    def test_child_visits_present(self, expr_grammar, expr_plan):
        production = next(
            p for p in expr_grammar.productions if p.label == "expr -> expr + expr"
        )
        sequence = expr_plan.sequences[production.index]
        visits = [
            instruction
            for segment in sequence.segments
            for instruction in segment
            if isinstance(instruction, VisitChildInstruction)
        ]
        assert {v.child_position for v in visits} == {1, 3}

    def test_rule_ordering_respects_dependencies(self, expr_grammar, expr_plan):
        # In "block -> LET ID = expr IN expr NI" the rule for $6.stab (st_add) needs
        # $4.value, so the visit of child 4 must precede the evaluation of $6.stab.
        production = next(
            p for p in expr_grammar.productions if p.label.startswith("block ->")
        )
        sequence = expr_plan.sequences[production.index]
        flat = [instruction for segment in sequence.segments for instruction in segment]
        visit_4 = next(
            i for i, ins in enumerate(flat)
            if isinstance(ins, VisitChildInstruction) and ins.child_position == 4
        )
        st_add_rule_index = next(
            i for i, rule in enumerate(production.rules)
            if rule.target == AttributeRef(6, "stab")
        )
        eval_st_add = next(
            i for i, ins in enumerate(flat)
            if isinstance(ins, EvalInstruction) and ins.rule_index == st_add_rule_index
        )
        assert visit_4 < eval_st_add

    def test_two_pass_grammar_sequences(self):
        grammar = _two_pass_grammar()
        plan = build_evaluation_plan(grammar)
        item_production = next(
            p for p in grammar.productions if p.label == "item -> ID"
        )
        sequence = plan.sequences[item_production.index]
        assert sequence.visit_count == 2
        # decls is computed in visit 1, code in visit 2.
        first_rules = {
            item_production.rules[i.rule_index].target.name
            for i in sequence.segment(1)
            if isinstance(i, EvalInstruction)
        }
        second_rules = {
            item_production.rules[i.rule_index].target.name
            for i in sequence.segment(2)
            if isinstance(i, EvalInstruction)
        }
        assert first_rules == {"decls"}
        assert second_rules == {"code"}

    def test_describe_is_readable(self, expr_grammar, expr_plan):
        production = expr_grammar.productions[0]
        text = expr_plan.sequences[production.index].describe(production)
        assert "visit sequence" in text
        assert "eval" in text
