"""Tests for the Pascal-subset compiler: parsing, typing, code generation, errors."""

from __future__ import annotations

import pytest

from repro.pascal import PascalCompiler, SAMPLE_PROGRAMS, generate_program, tokenize_pascal
from repro.pascal.grammar import pascal_grammar
from repro.pascal import types as ptypes


@pytest.fixture(scope="module")
def compiler():
    return PascalCompiler()


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize_pascal("BEGIN begin Begin")]
        assert kinds == ["BEGIN", "BEGIN", "BEGIN"]

    def test_compound_operators(self):
        kinds = [t.kind for t in tokenize_pascal("a := b <= c <> d .. e")]
        assert ":=" in kinds and "<=" in kinds and "<>" in kinds and ".." in kinds

    def test_comments_skipped(self):
        kinds = [t.kind for t in tokenize_pascal("x { comment } := (* other *) 1")]
        assert kinds == ["IDENTIFIER", ":=", "NUMBER"]

    def test_string_literals(self):
        tokens = tokenize_pascal("writeln('hello, ''quoted'' world')")
        assert any(t.kind == "STRINGLIT" for t in tokens)


class TestGrammar:
    def test_size_matches_paper_scale(self):
        grammar = pascal_grammar()
        assert 80 <= len(grammar.productions) <= 120
        assert grammar.rule_count() >= 300
        split_names = {nt.name for nt in grammar.split_nonterminals}
        assert split_names == {"statement", "statement_list", "proc_decl", "proc_decls"}

    def test_priority_attributes_declared(self):
        grammar = pascal_grammar()
        statement = grammar.nonterminals["statement"]
        assert statement.attribute("env").priority
        assert statement.attribute("env").is_inherited

    def test_grammar_is_ordered(self):
        from repro.analysis.visit_sequences import build_evaluation_plan

        plan = build_evaluation_plan(pascal_grammar())
        assert plan.visit_count("proc_decl") == 2
        assert plan.visit_count("statement") == 1


class TestTypes:
    def test_array_type(self):
        array = ptypes.ArrayType(1, 10, ptypes.INTEGER)
        assert array.size() == 40
        assert array.length == 10
        with pytest.raises(ValueError):
            ptypes.ArrayType(5, 1, ptypes.INTEGER)

    def test_record_type_offsets(self):
        record = ptypes.RecordType([("a", ptypes.INTEGER), ("b", ptypes.BOOLEAN)])
        assert record.field_offset("a") == 0
        assert record.field_offset("b") == 4
        assert record.field_type("missing") is None
        assert record.size() == 8

    def test_compatibility(self):
        assert ptypes.types_compatible(ptypes.INTEGER, ptypes.INTEGER)
        assert not ptypes.types_compatible(ptypes.INTEGER, ptypes.BOOLEAN)
        assert ptypes.types_compatible(ptypes.INTEGER, ptypes.ERROR_TYPE)


class TestCompilation:
    @pytest.mark.parametrize("name", sorted(SAMPLE_PROGRAMS))
    @pytest.mark.parametrize("evaluator", ["static", "dynamic", "combined"])
    def test_samples_compile_cleanly(self, compiler, name, evaluator):
        result = compiler.compile(SAMPLE_PROGRAMS[name], evaluator=evaluator)
        assert result.ok, result.errors
        assert result.code

    def test_evaluators_produce_identical_code(self, compiler):
        source = SAMPLE_PROGRAMS["sorting"]
        static = compiler.compile(source, evaluator="static")
        dynamic = compiler.compile(source, evaluator="dynamic")
        combined = compiler.compile(source, evaluator="combined")
        assert static.code.count("\n") == dynamic.code.count("\n") == combined.code.count("\n")

    def test_generated_assembly_structure(self, compiler):
        result = compiler.compile(SAMPLE_PROGRAMS["factorial"], evaluator="static")
        assert "_main" in result.code
        assert "calls" in result.code
        assert ".globl" in result.code
        # The recursive factorial function must have a label and a ret.
        assert "F_fact_" in result.code
        assert "\tret\n" in result.code

    def test_global_variables_emitted(self, compiler):
        result = compiler.compile(SAMPLE_PROGRAMS["sorting"], evaluator="static")
        assert ".lcomm\tG_data" in result.code

    def test_string_literals_in_data_segment(self, compiler):
        result = compiler.compile(SAMPLE_PROGRAMS["hello"], evaluator="static")
        assert '.asciz\t"hello, world"' in result.code

    def test_nested_procedure_uses_static_link(self, compiler):
        result = compiler.compile(SAMPLE_PROGRAMS["nested"], evaluator="static")
        # Access to an enclosing scope's variable goes through the static link chain.
        assert "4(r2)" in result.code or "(r2)" in result.code


class TestDiagnostics:
    def _errors(self, compiler, body, declarations=""):
        source = f"program t; {declarations} begin {body} end."
        return compiler.compile(source, evaluator="static").errors

    def test_undeclared_identifier(self, compiler):
        errors = self._errors(compiler, "x := 1")
        assert any("undeclared" in message for message in errors)

    def test_type_mismatch_assignment(self, compiler):
        errors = self._errors(compiler, "x := true", "var x: integer;")
        assert any("cannot assign" in message for message in errors)

    def test_condition_must_be_boolean(self, compiler):
        errors = self._errors(compiler, "if x then x := 1", "var x: integer;")
        assert any("condition must be boolean" in message for message in errors)

    def test_wrong_argument_count(self, compiler):
        source = """
        program t;
        var a: integer;
        procedure p(x: integer);
        begin x := x end;
        begin p(1, 2); a := 0 end.
        """
        errors = PascalCompiler().compile(source, evaluator="static").errors
        assert any("expects 1 argument" in message for message in errors)

    def test_var_parameter_needs_variable(self, compiler):
        source = """
        program t;
        var a: integer;
        procedure p(var x: integer);
        begin x := x end;
        begin p(a + 1) end.
        """
        errors = PascalCompiler().compile(source, evaluator="static").errors
        assert any("must be a variable" in message for message in errors)

    def test_unknown_type(self, compiler):
        errors = self._errors(compiler, "x := 1", "var x: widget;")
        assert any("unknown type" in message for message in errors)

    def test_duplicate_declarations(self, compiler):
        errors = self._errors(compiler, "x := 1", "var x: integer; x: integer;")
        assert any("duplicate variable" in message for message in errors)

    def test_array_index_type(self, compiler):
        errors = self._errors(
            compiler, "a[true] := 1", "var a: array [1..4] of integer;"
        )
        assert any("array index" in message for message in errors)

    def test_record_field_missing(self, compiler):
        errors = self._errors(
            compiler, "p.z := 1", "type pt = record x: integer end; var p: pt;"
        )
        assert any("no field" in message for message in errors)


class TestGeneratedPrograms:
    def test_generator_is_deterministic(self):
        assert generate_program(seed=7, procedures=5) == generate_program(seed=7, procedures=5)

    def test_generated_program_compiles(self, compiler):
        source = generate_program(procedures=6, statements_per_procedure=3, seed=2)
        result = compiler.compile(source, evaluator="static")
        assert result.ok, result.errors[:5]
        assert result.tree_nodes > 500

    def test_paper_sized_program_shape(self):
        source = generate_program()
        lines = source.count("\n") + 1
        assert 700 <= lines <= 2500
        assert source.count("procedure ") + source.count("function ") >= 46
