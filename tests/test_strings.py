"""Tests for rope strings, descriptors and code values (with property-based checks)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.strings.code import as_code, code_concat, code_join, code_size, flatten_code
from repro.strings.descriptors import ConcatDescriptor, LeafDescriptor, LiteralDescriptor
from repro.strings.rope import Rope, rope


class TestRope:
    def test_leaf_and_flatten(self):
        assert Rope.leaf("hello").flatten() == "hello"
        assert len(Rope.leaf("hello")) == 5

    def test_empty(self):
        assert Rope.empty().flatten() == ""
        assert len(Rope.empty()) == 0

    def test_concat_is_constant_size_metadata(self):
        left = Rope.leaf("a" * 100)
        right = Rope.leaf("b" * 50)
        joined = Rope.concat(left, right)
        assert len(joined) == 150
        assert joined.leaf_count == 2

    def test_concat_elides_empty(self):
        piece = Rope.leaf("x")
        assert Rope.concat(Rope.empty(), piece) is piece
        assert Rope.concat(piece, Rope.empty()) is piece

    def test_addition_operators(self):
        value = Rope.leaf("a") + "b" + Rope.leaf("c")
        assert value.flatten() == "abc"
        assert ("pre" + Rope.leaf("fix")).flatten() == "prefix"

    def test_join(self):
        assert Rope.join(["a", Rope.leaf("b"), "c"]).flatten() == "abc"

    def test_equality_with_strings(self):
        assert Rope.leaf("ab") + "c" == "abc"
        assert Rope.leaf("ab") == Rope.concat(Rope.leaf("a"), Rope.leaf("b"))

    def test_iter_leaves_order(self):
        value = (Rope.leaf("a") + "b") + (Rope.leaf("c") + "d")
        assert list(value.iter_leaves()) == ["a", "b", "c", "d"]

    def test_transmission_size_accounts_for_leaves(self):
        value = Rope.leaf("abcd") + Rope.leaf("ef")
        assert value.transmission_size() == 6 + 4 * 2

    def test_invalid_node(self):
        with pytest.raises(ValueError):
            Rope(text="x", left=Rope.leaf("y"))

    def test_rope_helper(self):
        assert rope("abc").flatten() == "abc"
        assert rope("").flatten() == ""
        existing = Rope.leaf("x")
        assert rope(existing) is existing

    @given(st.lists(st.text(max_size=8), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_property_join_matches_python_concat(self, pieces):
        assert Rope.join(list(pieces)).flatten() == "".join(pieces)

    @given(st.text(max_size=20), st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_property_concat_associative(self, a, b, c):
        left = Rope.concat(Rope.concat(Rope.leaf(a), Rope.leaf(b)), Rope.leaf(c))
        right = Rope.concat(Rope.leaf(a), Rope.concat(Rope.leaf(b), Rope.leaf(c)))
        assert left.flatten() == right.flatten()
        assert len(left) == len(a) + len(b) + len(c)


class TestDescriptors:
    def _library(self):
        fragments = {
            (1, 1): Rope.leaf("alpha "),
            (2, 1): Rope.leaf("beta "),
        }
        return fragments, lambda region, fragment: fragments[(region, fragment)]

    def test_leaf_descriptor_assembly(self):
        fragments, lookup = self._library()
        descriptor = LeafDescriptor(1, 1, 6)
        assert descriptor.assemble(lookup).flatten() == "alpha "
        assert descriptor.fragment_ids() == [(1, 1)]

    def test_concat_descriptor_assembly_preserves_order(self):
        fragments, lookup = self._library()
        descriptor = ConcatDescriptor(
            LeafDescriptor(1, 1, 6),
            ConcatDescriptor(LiteralDescriptor(Rope.leaf("and ")), LeafDescriptor(2, 1, 5)),
        )
        assert descriptor.assemble(lookup).flatten() == "alpha and beta "
        assert descriptor.fragment_ids() == [(1, 1), (2, 1)]

    def test_descriptor_sizes_are_small(self):
        descriptor = ConcatDescriptor(LeafDescriptor(1, 1, 10_000), LeafDescriptor(2, 1, 20_000))
        assert descriptor.descriptor_size() < 100


class TestCodeValues:
    def test_code_concat_ropes(self):
        value = code_concat("a", Rope.leaf("b"))
        assert isinstance(value, Rope)
        assert value.flatten() == "ab"

    def test_code_concat_with_descriptor(self):
        descriptor = LeafDescriptor(3, 1, 4)
        value = code_concat("local ", descriptor)
        assert not isinstance(value, Rope)
        assert value.fragment_ids() == [(3, 1)]

    def test_code_join_and_flatten_with_lookup(self):
        descriptor = LeafDescriptor(3, 1, 6)
        value = code_join(["head ", descriptor, " tail"])
        text = flatten_code(value, lambda r, f: Rope.leaf("REMOTE"))
        assert text == "head REMOTE tail"

    def test_code_size(self):
        assert code_size("abcd") == Rope.leaf("abcd").transmission_size()
        assert code_size(LeafDescriptor(1, 1, 50)) == 12

    def test_as_code_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_code(42)
