"""Tests for rope strings, descriptors and code values (with property-based checks)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.strings.code import as_code, code_concat, code_join, code_size, flatten_code
from repro.strings.descriptors import ConcatDescriptor, LeafDescriptor, LiteralDescriptor
from repro.strings.rope import Rope, rope


class TestRope:
    def test_leaf_and_flatten(self):
        assert Rope.leaf("hello").flatten() == "hello"
        assert len(Rope.leaf("hello")) == 5

    def test_empty(self):
        assert Rope.empty().flatten() == ""
        assert len(Rope.empty()) == 0

    def test_concat_is_constant_size_metadata(self):
        left = Rope.leaf("a" * 100)
        right = Rope.leaf("b" * 50)
        joined = Rope.concat(left, right)
        assert len(joined) == 150
        assert joined.leaf_count == 2

    def test_concat_elides_empty(self):
        piece = Rope.leaf("x")
        assert Rope.concat(Rope.empty(), piece) is piece
        assert Rope.concat(piece, Rope.empty()) is piece

    def test_addition_operators(self):
        value = Rope.leaf("a") + "b" + Rope.leaf("c")
        assert value.flatten() == "abc"
        assert ("pre" + Rope.leaf("fix")).flatten() == "prefix"

    def test_join(self):
        assert Rope.join(["a", Rope.leaf("b"), "c"]).flatten() == "abc"

    def test_equality_with_strings(self):
        assert Rope.leaf("ab") + "c" == "abc"
        assert Rope.leaf("ab") == Rope.concat(Rope.leaf("a"), Rope.leaf("b"))

    def test_iter_leaves_order(self):
        value = (Rope.leaf("a") + "b") + (Rope.leaf("c") + "d")
        assert list(value.iter_leaves()) == ["a", "b", "c", "d"]

    def test_transmission_size_accounts_for_leaves(self):
        value = Rope.leaf("abcd") + Rope.leaf("ef")
        assert value.transmission_size() == 6 + 4 * 2

    def test_invalid_node(self):
        with pytest.raises(ValueError):
            Rope(text="x", left=Rope.leaf("y"))

    def test_rope_helper(self):
        assert rope("abc").flatten() == "abc"
        assert rope("").flatten() == ""
        existing = Rope.leaf("x")
        assert rope(existing) is existing

    @given(st.lists(st.text(max_size=8), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_property_join_matches_python_concat(self, pieces):
        assert Rope.join(list(pieces)).flatten() == "".join(pieces)

    @given(st.text(max_size=20), st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_property_concat_associative(self, a, b, c):
        left = Rope.concat(Rope.concat(Rope.leaf(a), Rope.leaf(b)), Rope.leaf(c))
        right = Rope.concat(Rope.leaf(a), Rope.concat(Rope.leaf(b), Rope.leaf(c)))
        assert left.flatten() == right.flatten()
        assert len(left) == len(a) + len(b) + len(c)


class TestRopeEdits:
    def _document(self):
        pieces = ["alpha ", "beta ", "gamma ", "delta ", "epsilon"]
        return Rope.join(pieces), "".join(pieces)

    def test_split_matches_python_slicing(self):
        value, text = self._document()
        for position in range(len(text) + 1):
            left, right = value.split(position)
            assert left.flatten() == text[:position]
            assert right.flatten() == text[position:]

    def test_split_out_of_range(self):
        value, text = self._document()
        with pytest.raises(IndexError):
            value.split(-1)
        with pytest.raises(IndexError):
            value.split(len(text) + 1)

    def test_slice_edge_cases(self):
        value, text = self._document()
        assert value.slice(0, 0).flatten() == ""
        assert value.slice(0, len(text)).flatten() == text
        assert value.slice(3, 3).flatten() == ""
        assert value.slice(2, 9).flatten() == text[2:9]
        with pytest.raises(IndexError):
            value.slice(5, 2)
        with pytest.raises(IndexError):
            value.slice(0, len(text) + 1)

    def test_insert_delete_replace_match_strings(self):
        value, text = self._document()
        assert value.insert(0, ">>").flatten() == ">>" + text
        assert value.insert(len(text), "<<").flatten() == text + "<<"
        assert value.insert(7, "X").flatten() == text[:7] + "X" + text[7:]
        assert value.delete(0, 6).flatten() == text[6:]
        assert value.delete(3, 3).flatten() == text
        assert value.replace(6, 11, "BETA!").flatten() == text[:6] + "BETA!" + text[11:]
        assert value.replace(0, len(text), "").flatten() == ""

    def test_edits_preserve_untouched_leaves_by_reference(self):
        value, _ = self._document()
        original_leaves = list(value._leaves())
        edited = value.replace(8, 10, "XX")  # inside the "beta " leaf
        edited_leaves = list(edited._leaves())
        # Every leaf not straddling the edit is the *same object*, not a copy.
        assert original_leaves[0] in edited_leaves          # "alpha "
        for leaf in original_leaves[2:]:                    # "gamma " onwards
            assert leaf in edited_leaves
        assert original_leaves[1] not in edited_leaves      # the cut leaf

    def test_edit_chain_stays_shallow(self):
        value = Rope.leaf("x" * 64)
        for index in range(300):
            value = value.insert(len(value) // 2, str(index % 10))
        assert value.depth() <= 2 * (value.leaf_count.bit_length() + 1)

    def test_balanced_reuses_leaf_objects(self):
        leaves = [Rope.leaf(ch) for ch in "abcdefghij"]
        built = Rope.balanced(list(leaves))
        assert built.flatten() == "abcdefghij"
        assert set(id(leaf) for leaf in built._leaves()) == set(id(leaf) for leaf in leaves)

    @given(
        st.text(max_size=60),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_random_edit_sequences_match_strings(self, text, data):
        value = rope(text)
        reference = text
        for _ in range(4):
            start = data.draw(st.integers(0, len(reference)))
            end = data.draw(st.integers(start, len(reference)))
            insertion = data.draw(st.text(max_size=10))
            value = value.replace(start, end, insertion)
            reference = reference[:start] + insertion + reference[end:]
            assert value.flatten() == reference
            assert len(value) == len(reference)


class TestDescriptors:
    def _library(self):
        fragments = {
            (1, 1): Rope.leaf("alpha "),
            (2, 1): Rope.leaf("beta "),
        }
        return fragments, lambda region, fragment: fragments[(region, fragment)]

    def test_leaf_descriptor_assembly(self):
        fragments, lookup = self._library()
        descriptor = LeafDescriptor(1, 1, 6)
        assert descriptor.assemble(lookup).flatten() == "alpha "
        assert descriptor.fragment_ids() == [(1, 1)]

    def test_concat_descriptor_assembly_preserves_order(self):
        fragments, lookup = self._library()
        descriptor = ConcatDescriptor(
            LeafDescriptor(1, 1, 6),
            ConcatDescriptor(LiteralDescriptor(Rope.leaf("and ")), LeafDescriptor(2, 1, 5)),
        )
        assert descriptor.assemble(lookup).flatten() == "alpha and beta "
        assert descriptor.fragment_ids() == [(1, 1), (2, 1)]

    def test_descriptor_sizes_are_small(self):
        descriptor = ConcatDescriptor(LeafDescriptor(1, 1, 10_000), LeafDescriptor(2, 1, 20_000))
        assert descriptor.descriptor_size() < 100


class TestCodeValues:
    def test_code_concat_ropes(self):
        value = code_concat("a", Rope.leaf("b"))
        assert isinstance(value, Rope)
        assert value.flatten() == "ab"

    def test_code_concat_with_descriptor(self):
        descriptor = LeafDescriptor(3, 1, 4)
        value = code_concat("local ", descriptor)
        assert not isinstance(value, Rope)
        assert value.fragment_ids() == [(3, 1)]

    def test_code_join_and_flatten_with_lookup(self):
        descriptor = LeafDescriptor(3, 1, 6)
        value = code_join(["head ", descriptor, " tail"])
        text = flatten_code(value, lambda r, f: Rope.leaf("REMOTE"))
        assert text == "head REMOTE tail"

    def test_code_size(self):
        assert code_size("abcd") == Rope.leaf("abcd").transmission_size()
        assert code_size(LeafDescriptor(1, 1, 50)) == 12

    def test_as_code_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_code(42)
