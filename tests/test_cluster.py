"""Tests for the multi-host compile cluster: wire hardening, consistent hashing,
membership, and fault injection on the sockets substrate.

The fault-injection tests are the acceptance criteria of the subsystem: a
compile on a loopback cluster must produce a byte-identical result after a
worker is SIGKILLed mid-evaluation, after a coordinator-side job timeout, and
after a heartbeat expiry — because evaluator bodies are deterministic functions
of their mailbox logs and the coordinator suppresses duplicate outputs.
"""

from __future__ import annotations

import io
import os
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro import Compiler, GrammarLanguage, Session, register_language
from repro.api.language import unregister_language
from repro.backends import BackendError, create_substrate
from repro.backends.sockets import SocketsSubstrate, _worker_environment
from repro.cluster import wire
from repro.cluster.hashing import HashRing, stable_hash
from repro.cluster.membership import WorkerDirectory
from repro.cluster._testing import SLEEP_ENV, STALL_FILE_ENV, sleepy_grammar
from repro.exprlang import random_expression_source, tokenize_expression

# Fast receive bound so a wedged cluster fails in seconds, not minutes.
TIMEOUT = 60.0

SOURCE = random_expression_source(60, seed=11, nesting=4)
MACHINES = 4


# ----------------------------------------------------------------- wire protocol


class TestWireFraming:
    def test_round_trip(self):
        stream = io.BytesIO()
        message = ("send", 7, "m3", {"value": [1, 2, 3]}, 48)
        on_wire = wire.send_message(stream, message)
        assert on_wire == len(stream.getvalue())
        stream.seek(0)
        assert wire.recv_message(stream) == message

    def test_truncated_header(self):
        with pytest.raises(wire.ProtocolError, match="expected 4 bytes, received 2"):
            wire.read_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_payload(self):
        stream = io.BytesIO(struct.pack(">I", 100) + b"only-sixteen-byt")
        with pytest.raises(wire.ProtocolError, match="expected 100 bytes, received 16"):
            wire.read_frame(stream)

    def test_empty_stream(self):
        with pytest.raises(wire.ProtocolError, match="frame header"):
            wire.read_frame(io.BytesIO(b""))

    def test_oversize_header_rejected_before_allocation(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 64)
        stream = io.BytesIO(struct.pack(">I", 65) + b"\x00" * 65)
        with pytest.raises(wire.ProtocolError, match="announces 65 bytes"):
            wire.read_frame(stream)

    def test_oversize_write_rejected(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 64)
        with pytest.raises(wire.ProtocolError, match="exceeds"):
            wire.write_frame(io.BytesIO(), b"\x00" * 65)

    def test_protocol_error_is_a_value_error(self):
        # Generic decode-hardening handlers catch ValueError; wire corruption
        # must flow through the same channel as PackedTree corruption.
        assert issubclass(wire.ProtocolError, ValueError)

    def test_unpicklable_message(self):
        with pytest.raises(wire.ProtocolError, match="not picklable"):
            wire.send_message(io.BytesIO(), lambda: None)

    def test_undecodable_payload(self):
        stream = io.BytesIO()
        wire.write_frame(stream, b"these bytes are not a pickle")
        stream.seek(0)
        with pytest.raises(wire.ProtocolError, match="undecodable"):
            wire.recv_message(stream)


class TestHandshake:
    def test_hello_welcome_round_trip(self):
        message = wire.check_handshake(wire.hello("worker", "w1", {"pid": 42}))
        assert message["capabilities"] == {"pid": 42}
        accepted = wire.check_handshake(wire.welcome(3, 0.5), expect_status=True)
        assert accepted["worker_id"] == 3

    def test_non_dict_rejected(self):
        with pytest.raises(wire.ProtocolError, match="expected a dict"):
            wire.check_handshake(("hello",))

    def test_bad_magic_rejected(self):
        greeting = wire.hello("worker", "w1")
        greeting["magic"] = "http/1.1"
        with pytest.raises(wire.ProtocolError, match="not a repro cluster endpoint"):
            wire.check_handshake(greeting)

    def test_version_mismatch_is_explicit(self):
        greeting = wire.hello("worker", "w1")
        greeting["version"] = wire.PROTOCOL_VERSION + 1
        with pytest.raises(wire.ProtocolError, match="version mismatch"):
            wire.check_handshake(greeting)

    def test_rejection_reason_surfaces(self):
        with pytest.raises(wire.ProtocolError, match="fleet is full"):
            wire.check_handshake(wire.reject("fleet is full"), expect_status=True)

    def test_live_coordinator_rejects_foreign_role(self):
        from repro.cluster import ClusterCoordinator

        coordinator = ClusterCoordinator("127.0.0.1", 0).start()
        try:
            with socket.create_connection(coordinator.address, timeout=5.0) as sock:
                rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
                wire.send_message(wfile, wire.hello("spectator", "nosy"))
                reply = wire.recv_message(rfile)
            assert reply["status"] == "reject"
            assert "spectator" in reply["reason"]
        finally:
            coordinator.shutdown()

    def test_live_coordinator_rejects_version_skew(self):
        from repro.cluster import ClusterCoordinator

        coordinator = ClusterCoordinator("127.0.0.1", 0).start()
        try:
            greeting = wire.hello("worker", "time-traveller")
            greeting["version"] = wire.PROTOCOL_VERSION + 9
            with socket.create_connection(coordinator.address, timeout=5.0) as sock:
                rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
                wire.send_message(wfile, greeting)
                reply = wire.recv_message(rfile)
            assert reply["status"] == "reject"
            assert "version mismatch" in reply["reason"]
        finally:
            coordinator.shutdown()


# --------------------------------------------------------------------- hash ring


class TestHashRing:
    def test_stable_hash_is_process_independent(self):
        # blake2b of the key, not the salted builtin hash().
        assert stable_hash("region-1") == int.from_bytes(
            __import__("hashlib").blake2b(b"region-1", digest_size=8).digest(), "big"
        )

    def test_lookup_deterministic_across_instances(self):
        first, second = HashRing(), HashRing()
        for ring in (first, second):
            for node in ("1", "2", "3"):
                ring.add(node)
        keys = [f"key-{index}" for index in range(100)]
        assert [first.lookup(key) for key in keys] == [second.lookup(key) for key in keys]

    def test_remove_only_remaps_victims_keys(self):
        ring = HashRing()
        for node in ("1", "2", "3"):
            ring.add(node)
        keys = [f"region/{index}" for index in range(200)]
        before = {key: ring.lookup(key) for key in keys}
        assert set(before.values()) == {"1", "2", "3"}  # all shards used
        ring.remove("3")
        after = {key: ring.lookup(key) for key in keys}
        for key in keys:
            if before[key] != "3":
                assert after[key] == before[key]  # survivors keep their keys
            else:
                assert after[key] in {"1", "2"}

    def test_preference_lists_every_node_once_owner_first(self):
        ring = HashRing()
        for node in ("1", "2", "3", "4"):
            ring.add(node)
        for index in range(50):
            order = ring.preference(f"job-{index}")
            assert sorted(order) == ["1", "2", "3", "4"]
            assert order[0] == ring.lookup(f"job-{index}")

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.lookup("anything") is None
        assert ring.preference("anything") == []
        ring.remove("ghost")  # idempotent

    def test_add_is_idempotent(self):
        ring = HashRing(replicas=8)
        ring.add("1")
        points = list(ring._points)
        ring.add("1")
        assert ring._points == points


class TestWorkerDirectory:
    def test_register_touch_expire(self):
        directory = WorkerDirectory()
        info = directory.register("w1", "127.0.0.1:9", {"pid": 1})
        assert directory.alive_count() == 1
        time.sleep(0.05)
        assert [stale.worker_id for stale in directory.expired(0.01)] == [info.worker_id]
        directory.touch(info.worker_id)
        assert directory.expired(10.0) == []

    def test_mark_dead_is_first_writer_wins(self):
        directory = WorkerDirectory()
        info = directory.register("w1", "127.0.0.1:9", {})
        assert directory.mark_dead(info.worker_id, "connection lost")
        assert not directory.mark_dead(info.worker_id, "heartbeat expiry")
        assert directory.get(info.worker_id).death_reason == "connection lost"
        assert directory.alive_count() == 0
        assert directory.total_count() == 1


# ------------------------------------------------------------- fault injection


@pytest.fixture(scope="module")
def sleepy_language():
    """The throttle-able expression grammar, registered for the module."""
    language = GrammarLanguage(
        "cluster-sleepy",
        sleepy_grammar,
        tokenize=tokenize_expression,
        result_attribute="value",
        error_attribute=None,
    )
    register_language(language, replace=True)
    yield language
    unregister_language("cluster-sleepy")


@pytest.fixture(scope="module")
def reference_value(sleepy_language):
    """What every faulty run must still compute: the simulated-substrate value."""
    assert SLEEP_ENV not in os.environ and STALL_FILE_ENV not in os.environ
    result = Compiler("cluster-sleepy", machines=MACHINES).compile(SOURCE)
    return result.value


def _kill_first_busy_worker(pool: SocketsSubstrate, killed: list, deadline: float = 15.0):
    """Poll until some worker is evaluating a region, then SIGKILL its process."""
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        busy = pool.worker_ids(with_work=True)
        if busy and pool.kill_worker(busy[0]):
            killed.append(busy[0])
            return
        time.sleep(0.01)


class TestClusterFaultTolerance:
    def test_kill_worker_mid_compile_is_byte_identical(
        self, sleepy_language, reference_value, monkeypatch
    ):
        monkeypatch.setenv(SLEEP_ENV, "0.05")
        pool = SocketsSubstrate(workers=3, receive_timeout=TIMEOUT)
        killed: list = []
        try:
            pool.start()
            killer = threading.Thread(
                target=_kill_first_busy_worker, args=(pool, killed), daemon=True
            )
            killer.start()
            with Session(substrate=pool) as session:
                result = session.compile("cluster-sleepy", SOURCE, machines=MACHINES)
            killer.join(timeout=20.0)
            stats = pool.cluster_stats()
        finally:
            pool.shutdown()
        assert killed, "no worker was ever observed evaluating a region"
        assert result.value == reference_value
        assert stats.reassignments >= 1
        assert stats.jobs_failed == 0

    def test_job_timeout_retries_with_backoff(
        self, sleepy_language, reference_value, monkeypatch, tmp_path
    ):
        stall_file = tmp_path / "stall"
        stall_file.write_text("busy")
        monkeypatch.setenv(STALL_FILE_ENV, str(stall_file))
        pool = SocketsSubstrate(
            workers=2, receive_timeout=TIMEOUT, job_timeout=0.75, max_attempts=5
        )

        def release_after_first_timeout():
            limit = time.monotonic() + 20.0
            while time.monotonic() < limit:
                if pool.cluster_stats().timeout_retries >= 1:
                    break
                time.sleep(0.02)
            stall_file.unlink(missing_ok=True)

        try:
            pool.start()
            releaser = threading.Thread(target=release_after_first_timeout, daemon=True)
            releaser.start()
            with Session(substrate=pool) as session:
                result = session.compile("cluster-sleepy", SOURCE, machines=MACHINES)
            releaser.join(timeout=25.0)
            stats = pool.cluster_stats()
        finally:
            stall_file.unlink(missing_ok=True)
            pool.shutdown()
        assert result.value == reference_value
        assert stats.timeout_retries >= 1
        assert stats.jobs_failed == 0

    def test_heartbeat_expiry_detects_silent_worker(
        self, sleepy_language, reference_value, monkeypatch
    ):
        monkeypatch.setenv(SLEEP_ENV, "0.05")
        pool = SocketsSubstrate(
            workers=3,
            receive_timeout=TIMEOUT,
            heartbeat_interval=0.1,
            heartbeat_timeout=1.5,
        )
        paused: list = []

        def pause_first_busy_worker():
            limit = time.monotonic() + 15.0
            while time.monotonic() < limit:
                busy = pool.worker_ids(with_work=True)
                if busy and pool.pause_worker(busy[0]):
                    paused.append(busy[0])
                    return
                time.sleep(0.01)

        try:
            pool.start()
            pauser = threading.Thread(target=pause_first_busy_worker, daemon=True)
            pauser.start()
            with Session(substrate=pool) as session:
                result = session.compile("cluster-sleepy", SOURCE, machines=MACHINES)
            pauser.join(timeout=20.0)
            stats = pool.cluster_stats()
        finally:
            # SIGKILL the stopped process so shutdown() does not wait out its
            # 5-second grace period (a SIGSTOPped worker cannot unwind).
            for worker_id in paused:
                pool.kill_worker(worker_id)
            pool.shutdown()
        assert paused, "no worker was ever observed evaluating a region"
        assert result.value == reference_value
        assert stats.heartbeat_timeouts >= 1
        assert stats.reassignments >= 1

    def test_speculative_reexecution_of_stragglers(
        self, sleepy_language, reference_value, monkeypatch
    ):
        monkeypatch.setenv(SLEEP_ENV, "0.1")
        pool = SocketsSubstrate(
            workers=3, receive_timeout=TIMEOUT, speculate_after=0.3
        )
        try:
            pool.start()
            with Session(substrate=pool) as session:
                result = session.compile("cluster-sleepy", SOURCE, machines=MACHINES)
            stats = pool.cluster_stats()
        finally:
            pool.shutdown()
        assert result.value == reference_value
        assert stats.speculative_attempts >= 1
        # Both twins ran to completion somewhere; the loser's outputs were dropped.
        assert stats.jobs_failed == 0


# -------------------------------------------------------------- cluster plumbing


class TestClusterPlumbing:
    def test_external_worker_joins_via_cli(self):
        """The documented multi-host path: an unmanaged coordinator plus a worker
        started by hand with ``python -m repro.cluster.worker --connect``."""
        pool = SocketsSubstrate(workers=0, manage_workers=False, receive_timeout=TIMEOUT)
        process = None
        try:
            pool.start()
            host, port = pool.address
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.cluster.worker",
                 "--connect", f"{host}:{port}", "--name", "external-1"],
                env=_worker_environment(),
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            assert pool.wait_for_workers(1, timeout=30.0) >= 1
            reference = Compiler("exprlang").compile(SOURCE).value
            with Session(substrate=pool) as session:
                assert session.compile("exprlang", SOURCE).value == reference
        finally:
            pool.shutdown()
            if process is not None:
                # The shutdown frame asks the worker to exit; give it a moment.
                try:
                    assert process.wait(timeout=10.0) == 0
                finally:
                    if process.poll() is None:
                        process.kill()

    def test_bundles_ship_once_per_worker(self):
        pool = create_substrate("sockets", workers=2, receive_timeout=TIMEOUT)
        try:
            pool.start()
            with Session(substrate=pool) as session:
                values = [session.compile("exprlang", SOURCE).value for _ in range(4)]
                shipped = pool.cluster_stats().bundles_shipped
        finally:
            pool.shutdown()
        assert len(set(values)) == 1
        # Four compiles, one exprlang bundle, two shards: the name-keyed cache
        # ships the bundle to each worker at most once, ever — never per compile.
        assert 1 <= shipped <= 2

    def test_service_stats_surface_cluster_counters(self):
        from repro.service import CompilationJob

        pool = create_substrate("sockets", workers=2, receive_timeout=TIMEOUT)
        try:
            pool.start()
            with Session(substrate=pool) as session:
                with session.service(max_in_flight=2) as service:
                    service.compile_many(
                        [CompilationJob(language="exprlang", source=SOURCE, machines=2)]
                    )
                    stats = service.stats()
        finally:
            pool.shutdown()
        assert stats.cluster_workers >= 2
        assert stats.cluster_reassignments == 0
        summary = stats.summary()
        assert "cluster" in summary

    def test_substrate_requires_picklable_jobs(self):
        pool = create_substrate("sockets", workers=2, receive_timeout=TIMEOUT)
        try:
            pool.start()
            session = pool.session()

            def raw_body():
                yield  # pragma: no cover — rejected before first resume

            with pytest.raises(BackendError, match="picklable WorkerJob"):
                session.spawn(raw_body(), name="raw")
            session.close()
        finally:
            pool.shutdown()

    def test_too_few_workers_is_a_clear_error(self):
        pool = SocketsSubstrate(
            workers=2, receive_timeout=TIMEOUT, worker_startup_timeout=0.0
        )
        with pytest.raises(BackendError, match="local cluster workers"):
            pool.start()
        pool.shutdown()
