"""Tests for the distributed layer: protocol, unique ids, librarian, parallel compiler."""

from __future__ import annotations

import pytest

from repro.distributed.compiler import CompilerConfiguration, ParallelCompiler
from repro.distributed.unique_ids import (
    UniqueIdGenerator,
    base_for_region,
    current_generator,
    next_label,
    next_unique_id,
    unique_id_context,
)
from repro.exprlang.evaluator import random_expression_source
from repro.exprlang.frontend import parse_expression
from repro.exprlang.grammar import expression_grammar
from repro.runtime.network import NetworkParameters


class TestUniqueIds:
    def test_generator_monotonic(self):
        generator = UniqueIdGenerator(100)
        assert generator.next_id() == 100
        assert generator.next_id() == 101
        assert generator.next_label("L") == "L102"
        assert generator.issued == 3

    def test_context_nesting(self):
        outer_before = current_generator()
        with unique_id_context(1000) as generator:
            assert next_unique_id() == 1000
            with unique_id_context(2000):
                assert next_unique_id() == 2000
            assert next_unique_id() == 1001
            assert generator.issued == 2
        assert current_generator() is outer_before

    def test_labels_disjoint_across_regions(self):
        bases = [base_for_region(region) for region in range(6)]
        assert len(set(bases)) == 6
        assert all(bases[i + 1] - bases[i] >= 1_000_000 for i in range(5))

    def test_next_label_uses_active_context(self):
        with unique_id_context(base_for_region(3)):
            label = next_label("T")
        assert label.startswith("T")
        assert int(label[1:]) >= base_for_region(3)


@pytest.fixture(scope="module")
def split_grammar():
    """Expression grammar with a low split threshold so small trees decompose."""
    return expression_grammar(min_split_size=60)


@pytest.fixture(scope="module")
def big_expression(split_grammar):
    source = random_expression_source(250, seed=11, nesting=6)
    return source, parse_expression(source, split_grammar)


class TestParallelCompiler:
    @pytest.mark.parametrize("evaluator", ["combined", "dynamic"])
    def test_parallel_matches_sequential_value(self, split_grammar, big_expression, evaluator):
        source, tree = big_expression
        compiler = ParallelCompiler(split_grammar, CompilerConfiguration(evaluator=evaluator))
        sequential = compiler.compile_tree(tree, 1)
        parallel = compiler.compile_tree(tree, 4)
        assert parallel.root_attributes["value"] == sequential.root_attributes["value"]
        assert parallel.machines == 4
        assert parallel.decomposition.region_count >= 2

    def test_single_machine_has_single_region_and_no_network_traffic(
        self, split_grammar, big_expression
    ):
        _, tree = big_expression
        compiler = ParallelCompiler(split_grammar)
        report = compiler.compile_tree(tree, 1)
        assert report.decomposition.region_count == 1
        assert report.network_messages == 0
        assert report.evaluation_time > 0

    def test_combined_faster_than_dynamic(self, split_grammar, big_expression):
        _, tree = big_expression
        combined = ParallelCompiler(
            split_grammar, CompilerConfiguration(evaluator="combined")
        ).compile_tree(tree, 3)
        dynamic = ParallelCompiler(
            split_grammar, CompilerConfiguration(evaluator="dynamic")
        ).compile_tree(tree, 3)
        assert combined.evaluation_time < dynamic.evaluation_time
        assert combined.dynamic_fraction < 0.2
        assert dynamic.dynamic_fraction == pytest.approx(1.0)

    def test_timeline_and_utilization_reported(self, split_grammar, big_expression):
        _, tree = big_expression
        report = ParallelCompiler(split_grammar).compile_tree(tree, 3)
        assert set(report.timeline) == {f"machine-{i}" for i in range(3)}
        assert all(0.0 <= value <= 1.0 for value in report.utilization.values())
        assert report.memory_bytes > 0

    def test_slow_network_increases_time(self, split_grammar, big_expression):
        _, tree = big_expression
        fast = ParallelCompiler(
            split_grammar,
            CompilerConfiguration(network=NetworkParameters(bandwidth_bytes_per_second=10e6)),
        ).compile_tree(tree, 4)
        slow = ParallelCompiler(
            split_grammar,
            CompilerConfiguration(
                network=NetworkParameters(bandwidth_bytes_per_second=50e3, message_latency=0.05)
            ),
        ).compile_tree(tree, 4)
        assert slow.evaluation_time > fast.evaluation_time

    def test_invalid_evaluator_rejected(self, split_grammar):
        with pytest.raises(ValueError):
            ParallelCompiler(split_grammar, CompilerConfiguration(evaluator="quantum"))

    def test_speedup_against(self, split_grammar, big_expression):
        _, tree = big_expression
        compiler = ParallelCompiler(split_grammar)
        sequential = compiler.compile_tree(tree, 1)
        parallel = compiler.compile_tree(tree, 4)
        assert parallel.speedup_against(sequential) == pytest.approx(
            sequential.evaluation_time / parallel.evaluation_time
        )


class TestLibrarianProtocol:
    """End-to-end librarian behaviour is exercised through the Pascal compiler."""

    def test_librarian_reduces_network_bytes(self):
        from repro.pascal import PascalCompiler, generate_program

        compiler = PascalCompiler()
        source = generate_program(procedures=10, statements_per_procedure=3, seed=3)
        tree = compiler.parse(source)
        with_librarian = compiler.compile_tree_parallel(
            tree, 3, CompilerConfiguration(evaluator="combined", use_librarian=True)
        )
        without_librarian = compiler.compile_tree_parallel(
            tree, 3, CompilerConfiguration(evaluator="combined", use_librarian=False)
        )
        assert with_librarian.use_librarian
        assert not without_librarian.use_librarian
        assert with_librarian.network_bytes < without_librarian.network_bytes
        # Both configurations must produce the same assembly text.
        assert with_librarian.code_text("code") == without_librarian.code_text("code")

    def test_parallel_code_matches_sequential_code(self):
        from repro.pascal import PascalCompiler, generate_program

        compiler = PascalCompiler()
        source = generate_program(procedures=8, statements_per_procedure=3, seed=5)
        tree = compiler.parse(source)
        sequential = compiler.compile_tree_parallel(
            tree, 1, CompilerConfiguration(evaluator="combined")
        )
        parallel = compiler.compile_tree_parallel(
            tree, 4, CompilerConfiguration(evaluator="combined")
        )
        assert parallel.code_text("code").count("\n") == sequential.code_text("code").count("\n")
        assert parallel.root_attributes["errs"] == sequential.root_attributes["errs"]
