"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis.visit_sequences import build_evaluation_plan
from repro.exprlang.grammar import expression_grammar, expression_grammar_from_spec
from repro.parsing.parser import Parser
from repro.tree import shm


@pytest.fixture(autouse=True)
def assert_no_leaked_segments():
    """Every test must settle its shared-memory ship segments.

    The shipping session owns segment lifetime (created at ship, unlinked at
    settle/abort/shutdown); a name surviving a test — in the in-process registry
    or on /dev/shm — is a leak, including on failure paths.
    """
    yield
    leaked = shm.live_segment_names()
    assert not leaked, f"leaked shared-memory ship segments: {leaked}"
    on_disk = shm.system_segment_names()
    assert not on_disk, f"shared-memory segments left on /dev/shm: {on_disk}"


@pytest.fixture(scope="session")
def expr_grammar():
    """The appendix expression grammar (built programmatically)."""
    return expression_grammar()


@pytest.fixture(scope="session")
def expr_grammar_spec():
    """The appendix expression grammar parsed from its textual specification."""
    return expression_grammar_from_spec()


@pytest.fixture(scope="session")
def expr_plan(expr_grammar):
    """Ordered-evaluation plan for the expression grammar."""
    return build_evaluation_plan(expr_grammar)


@pytest.fixture(scope="session")
def expr_parser(expr_grammar):
    """A shared LALR parser for the expression grammar."""
    return Parser(expr_grammar)
