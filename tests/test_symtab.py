"""Tests for the persistent map and the applicative symbol table."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.symtab.persistent_tree import PersistentMap
from repro.symtab.symbol_table import SymbolTable, SymbolTableError, st_add, st_create, st_get, st_lookup, st_put


class TestPersistentMap:
    def test_insert_and_get(self):
        table = PersistentMap().insert(5, "five").insert(2, "two").insert(9, "nine")
        assert table.get(5) == "five"
        assert table.get(2) == "two"
        assert table.get(404) is None
        assert len(table) == 3

    def test_insert_is_applicative(self):
        original = PersistentMap().insert(1, "one")
        updated = original.insert(1, "uno").insert(2, "two")
        assert original.get(1) == "one"
        assert len(original) == 1
        assert updated.get(1) == "uno"
        assert len(updated) == 2

    def test_items_sorted(self):
        table = PersistentMap()
        for key in (5, 1, 9, 3):
            table = table.insert(key, key * 10)
        assert list(table.keys()) == [1, 3, 5, 9]

    def test_merge(self):
        left = PersistentMap().insert(1, "a").insert(2, "b")
        right = PersistentMap().insert(2, "B").insert(3, "c")
        merged = left.merge(right)
        assert merged.get(2) == "B"
        assert len(merged) == 3

    @given(st.dictionaries(st.integers(-1000, 1000), st.integers(), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_property_behaves_like_dict(self, mapping):
        table = PersistentMap()
        for key, value in mapping.items():
            table = table.insert(key, value)
        assert len(table) == len(mapping)
        for key, value in mapping.items():
            assert table.get(key) == value
        assert list(table.keys()) == sorted(mapping)


class TestSymbolTable:
    def test_create_add_lookup(self):
        table = st_add(st_create(), "x", 3)
        assert st_lookup(table, "x") == 3
        assert "x" in table
        assert "y" not in table

    def test_lookup_missing_raises(self):
        with pytest.raises(SymbolTableError):
            st_create().lookup("nope")

    def test_lookup_default(self):
        assert st_create().lookup("nope", 7) == 7

    def test_applicative_shadowing(self):
        outer = st_add(st_create(), "x", 1)
        inner = st_add(outer, "x", 2)
        assert st_lookup(outer, "x") == 1
        assert st_lookup(inner, "x") == 2
        assert len(outer) == 1
        assert len(inner) == 1

    def test_put_get_round_trip(self):
        table = st_create()
        for index, name in enumerate(["alpha", "beta", "gamma"]):
            table = st_add(table, name, index)
        rebuilt = st_get(st_put(table))
        assert rebuilt == table
        assert st_lookup(rebuilt, "beta") == 1

    def test_merge(self):
        left = st_add(st_add(st_create(), "a", 1), "b", 2)
        right = st_add(st_create(), "b", 20)
        merged = left.merge(right)
        assert merged.lookup("b") == 20
        assert merged.lookup("a") == 1

    def test_depth_stays_logarithmic(self):
        table = st_create()
        for index in range(400):
            table = table.add(f"name{index}", index)
        assert table.depth() <= 40

    def test_transmission_size_grows_with_bindings(self):
        small = st_add(st_create(), "x", 1)
        big = small
        for index in range(20):
            big = st_add(big, f"longer_identifier_{index}", index)
        assert big.transmission_size() > small.transmission_size()

    @given(st.dictionaries(st.text(st.characters(min_codepoint=97, max_codepoint=122),
                                   min_size=1, max_size=10),
                           st.integers(), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_dict_semantics(self, bindings):
        table = st_create()
        for name, value in bindings.items():
            table = st_add(table, name, value)
        assert len(table) == len(bindings)
        for name, value in bindings.items():
            assert st_lookup(table, name) == value
        assert sorted(dict(table.items())) == sorted(bindings)
