"""Tests for zero-copy region shipping: shared-memory segments and their lifetime.

The invariant under test everywhere: segment lifetime is owned by the shipping
session — created at ship, unlinked at settle/abort/shutdown — and a segment never
survives a compile, *including* failure paths.  ``tests/conftest.py`` additionally
asserts after every test (suite-wide) that no ship segment is still registered
in-process or present on ``/dev/shm``.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.distributed.compiler import CompilerConfiguration, ParallelCompiler
from repro.exprlang.evaluator import random_expression_source
from repro.exprlang.frontend import parse_expression
from repro.exprlang.grammar import expression_grammar
from repro.tree import shm
from repro.tree.linearize import pack, rebuild, unpack

pytestmark = pytest.mark.skipif(
    not shm.shared_memory_available(), reason="platform lacks shared memory"
)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


requires_fork = pytest.mark.skipif(
    not _fork_available(), reason="processes backend requires the fork start method"
)


@pytest.fixture(scope="module")
def split_grammar():
    return expression_grammar(min_split_size=60)


@pytest.fixture(scope="module")
def big_tree(split_grammar):
    source = random_expression_source(250, seed=11, nesting=6)
    return parse_expression(source, split_grammar)


class TestShareAndRebuild:
    def test_roundtrip_matches_unpack(self, split_grammar, big_tree):
        packed = pack(split_grammar, big_tree)
        handle, segment = shm.share_packed(packed)
        try:
            assert handle.size_bytes() == packed.size_bytes()
            shared_root, shared_holes = rebuild(split_grammar, handle)
            packed_root, packed_holes = unpack(
                split_grammar, pack(split_grammar, big_tree)
            )
            assert shared_holes == {} and packed_holes == {}
            shared_nodes = list(shared_root.walk())
            packed_nodes = list(packed_root.walk())
            assert len(shared_nodes) == len(packed_nodes)
            for ours, theirs in zip(shared_nodes, packed_nodes):
                assert ours.symbol.name == theirs.symbol.name
                assert ours.is_terminal == theirs.is_terminal
                if ours.is_terminal:
                    assert ours.token_value == theirs.token_value
        finally:
            segment.release()

    def test_handle_pickles_small(self, split_grammar, big_tree):
        packed = pack(split_grammar, big_tree)
        handle, segment = shm.share_packed(packed)
        try:
            wire = pickle.dumps(handle)
            # The whole point of the handle: the region does not ride the mailbox.
            assert len(wire) < 256
            assert len(wire) < len(pickle.dumps(packed))
            clone = pickle.loads(wire)
            root, _holes = clone.rebuild(split_grammar)
            assert root.symbol.name == big_tree.symbol.name
        finally:
            segment.release()

    def test_rebuild_after_unlink_while_mapped_is_not_required(
        self, split_grammar, big_tree
    ):
        """Release before any rebuild: the segment is gone and attaching fails.

        (The production ordering is the reverse — workers attach while the parser
        still holds the link — but this pins down that release really unlinks.)
        """
        handle, segment = shm.share_packed(pack(split_grammar, big_tree))
        segment.release()
        with pytest.raises((FileNotFoundError, OSError)):
            rebuild(split_grammar, handle)


class TestSegmentLifecycle:
    def test_share_registers_and_release_unregisters(self, split_grammar, big_tree):
        handle, segment = shm.share_packed(pack(split_grammar, big_tree))
        assert handle.segment_name in shm.live_segment_names()
        assert handle.segment_name in shm.system_segment_names()
        segment.release()
        assert handle.segment_name not in shm.live_segment_names()
        assert handle.segment_name not in shm.system_segment_names()

    def test_release_is_idempotent(self, split_grammar, big_tree):
        _handle, segment = shm.share_packed(pack(split_grammar, big_tree))
        segment.release()
        segment.release()  # must not raise

    def test_release_tolerates_external_unlink(self, split_grammar, big_tree):
        handle, segment = shm.share_packed(pack(split_grammar, big_tree))
        foreign = shm._attach(handle.segment_name)
        foreign.unlink()
        foreign.close()
        segment.release()  # FileNotFoundError swallowed
        assert handle.segment_name not in shm.live_segment_names()

    @requires_fork
    def test_backend_close_releases_adopted_segments(self, split_grammar, big_tree):
        from repro.backends import create_backend

        backend = create_backend("processes", machines=2)
        try:
            assert backend.shared_ship
            handle, segment = shm.share_packed(pack(split_grammar, big_tree))
            backend.adopt_segment(segment)
        finally:
            backend.close()
        assert handle.segment_name not in shm.live_segment_names()
        assert handle.segment_name not in shm.system_segment_names()

    def test_only_processes_substrate_advertises_shared_ship(self):
        from repro.backends import create_backend

        for name in ("simulated", "threads", "sockets"):
            backend = create_backend(name, machines=2)
            try:
                assert not getattr(backend, "shared_ship", False)
            finally:
                backend.close()


class TestShipFaultInjection:
    """Failure paths must not leak segments, and refusals must fall back."""

    @requires_fork
    def test_oserror_falls_back_to_packed_bytes(
        self, split_grammar, big_tree, monkeypatch
    ):
        def refuse(packed):
            raise OSError("injected: /dev/shm exhausted")

        monkeypatch.setattr(shm, "share_packed", refuse)
        compiler = ParallelCompiler(split_grammar)
        report = compiler.compile_tree(big_tree, 4, backend="processes")
        reference = compiler.compile_tree(big_tree, 4)
        assert report.root_attributes["value"] == reference.root_attributes["value"]
        assert shm.live_segment_names() == []

    @requires_fork
    def test_ship_failure_releases_earlier_segments(
        self, split_grammar, big_tree, monkeypatch
    ):
        """A crash after some regions already shipped zero-copy: the session's
        close (the compile_tree finally) must release every adopted segment."""
        real = shm.share_packed
        calls = {"count": 0}

        def explode_on_second(packed):
            calls["count"] += 1
            if calls["count"] >= 2:
                raise RuntimeError("injected ship failure")
            return real(packed)

        monkeypatch.setattr(shm, "share_packed", explode_on_second)
        compiler = ParallelCompiler(split_grammar)
        with pytest.raises(RuntimeError, match="injected ship failure"):
            compiler.compile_tree(big_tree, 4, backend="processes")
        assert calls["count"] >= 2  # at least one segment was created, then the crash
        assert shm.live_segment_names() == []
        assert shm.system_segment_names() == []

    @requires_fork
    def test_zero_copy_disabled_by_configuration(
        self, split_grammar, big_tree, monkeypatch
    ):
        calls = {"count": 0}
        real = shm.share_packed

        def counting(packed):
            calls["count"] += 1
            return real(packed)

        monkeypatch.setattr(shm, "share_packed", counting)
        configuration = CompilerConfiguration(use_zero_copy_ship=False)
        ParallelCompiler(split_grammar, configuration).compile_tree(
            big_tree, 4, backend="processes"
        )
        assert calls["count"] == 0

    @requires_fork
    def test_zero_copy_engaged_on_processes(self, split_grammar, big_tree, monkeypatch):
        calls = {"count": 0}
        real = shm.share_packed

        def counting(packed):
            calls["count"] += 1
            return real(packed)

        monkeypatch.setattr(shm, "share_packed", counting)
        report = ParallelCompiler(split_grammar).compile_tree(
            big_tree, 4, backend="processes"
        )
        # Every region of the decomposition ships as a segment handle.
        assert calls["count"] == report.decomposition.region_count
        assert shm.live_segment_names() == []

    def test_sockets_never_ships_segments(self, split_grammar, big_tree, monkeypatch):
        def forbidden(packed):  # pragma: no cover - the assertion is the point
            raise AssertionError("sockets substrate must not ship shared memory")

        monkeypatch.setattr(shm, "share_packed", forbidden)
        report = ParallelCompiler(split_grammar).compile_tree(
            big_tree, 4, backend="sockets"
        )
        assert report.root_attributes["value"] is not None
