"""Tests for the pooled substrates and the compilation service layer.

Covers the substrate/session split (persistent worker pools reused across
compilations), the service API (futures, batches, stats), output parity between the
pooled and one-shot paths on every backend, concurrent jobs in flight on one pool,
and teardown on failure (a failing compilation must not leak workers or poison the
pool for later jobs).
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time

import pytest

from repro.backends import (
    BACKEND_NAMES,
    BackendError,
    ProcessesSubstrate,
    ThreadsSubstrate,
    create_substrate,
)
from repro.backends.base import Receive, WorkerJob
from repro.distributed.compiler import ParallelCompiler
from repro.exprlang import (
    evaluate_expression,
    evaluate_expression_parallel,
    parse_expression,
    random_expression_source,
)
from repro.exprlang.grammar import expression_grammar
from repro.service import CompilationJob, CompilationService, ServiceError


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


requires_fork = pytest.mark.skipif(
    not _fork_available(), reason="processes substrate requires the fork start method"
)

REAL_SUBSTRATES = ["threads", pytest.param("processes", marks=requires_fork)]
ALL_SUBSTRATES = ["simulated"] + REAL_SUBSTRATES

#: Fast receive bound for tests: failures surface in seconds, not minutes.
TIMEOUT = 20.0


@pytest.fixture(scope="module")
def split_grammar():
    return expression_grammar(min_split_size=60)


@pytest.fixture(scope="module")
def expr_compiler(split_grammar):
    return ParallelCompiler(split_grammar)


@pytest.fixture(scope="module")
def big_tree(split_grammar):
    source = random_expression_source(220, seed=7, nesting=6)
    return parse_expression(source, split_grammar)


@pytest.fixture(scope="module")
def reference_report(expr_compiler, big_tree):
    """One-shot simulated compilation of the shared tree (the parity baseline)."""
    return expr_compiler.compile_tree(big_tree, 3)


# ------------------------------------------------------------------- substrates


class TestSubstrateFactory:
    def test_known_names(self):
        for name in BACKEND_NAMES:
            if name == "processes" and not _fork_available():
                continue
            substrate = create_substrate(name)
            assert substrate.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            create_substrate("quantum")

    def test_sessions_require_started_threads_pool(self):
        substrate = ThreadsSubstrate()
        session = substrate.session(2)  # session() starts the pool implicitly
        assert session.name == "threads"
        substrate.shutdown()
        with pytest.raises(BackendError):
            substrate.session(2)


class TestPoolReuse:
    """Back-to-back compilations on one substrate stay independently reproducible."""

    @pytest.mark.parametrize("name", ALL_SUBSTRATES)
    def test_back_to_back_runs_match_one_shot(
        self, name, expr_compiler, big_tree, reference_report
    ):
        with create_substrate(name, receive_timeout=TIMEOUT) as pool:
            first = expr_compiler.compile_tree(big_tree, 3, substrate=pool)
            second = expr_compiler.compile_tree(big_tree, 3, substrate=pool)
        expected = reference_report.root_attributes["value"]
        assert first.root_attributes["value"] == expected
        assert second.root_attributes["value"] == expected
        assert pool.sessions_opened == 2

    @pytest.mark.parametrize("name", REAL_SUBSTRATES)
    def test_pool_workers_survive_across_compilations(
        self, name, expr_compiler, big_tree
    ):
        with create_substrate(name, receive_timeout=TIMEOUT) as pool:
            expr_compiler.compile_tree(big_tree, 3, substrate=pool)
            size_after_first = pool.pool_size
            expr_compiler.compile_tree(big_tree, 3, substrate=pool)
            assert pool.pool_size == size_after_first > 0

    @requires_fork
    def test_pascal_pool_reuse_byte_identical(self):
        from repro.pascal import PascalCompiler, generate_program

        compiler = PascalCompiler()
        source = generate_program(procedures=8, statements_per_procedure=3, seed=3)
        tree = compiler.parse(source)
        reference = compiler.compile_tree_parallel(tree, 4)
        with create_substrate("processes", receive_timeout=TIMEOUT) as pool:
            first = compiler.compile_tree_parallel(tree, 4, substrate=pool)
            second = compiler.compile_tree_parallel(tree, 4, substrate=pool)
        assert first.code_text("code") == reference.code_text("code")
        assert second.code_text("code") == reference.code_text("code")

    def test_exprlang_thin_client(self):
        with create_substrate("threads", receive_timeout=TIMEOUT) as pool:
            value = evaluate_expression_parallel(
                "let x = 3 in 1 + 2 * x ni", substrate=pool
            )
        assert value == 7


# ---------------------------------------------------------------------- service


class TestServiceParity:
    """Batched service output must match the one-shot path on every backend."""

    @pytest.mark.parametrize("name", ALL_SUBSTRATES)
    def test_batched_matches_one_shot(
        self, name, expr_compiler, big_tree, reference_report
    ):
        with CompilationService(
            name, max_in_flight=3, receive_timeout=TIMEOUT
        ) as service:
            jobs = [
                CompilationJob(expr_compiler, tree=big_tree, machines=3, label=f"j{i}")
                for i in range(3)
            ]
            reports = service.compile_many(jobs)
        expected = reference_report.root_attributes["value"]
        assert [r.root_attributes["value"] for r in reports] == [expected] * 3
        assert {r.backend for r in reports} == {name}

    def test_parse_inside_service(self, split_grammar, expr_compiler):
        source = random_expression_source(80, seed=3, nesting=4)
        expected = evaluate_expression(source, grammar=split_grammar)
        with CompilationService("threads", receive_timeout=TIMEOUT) as service:
            future = service.submit(
                CompilationJob(
                    expr_compiler,
                    source=source,
                    parse=lambda text: parse_expression(text, split_grammar),
                    machines=2,
                )
            )
            assert future.result().root_attributes["value"] == expected


class TestConcurrentSubmit:
    def test_many_jobs_in_flight_on_one_pool(self, split_grammar, expr_compiler):
        sources = [
            random_expression_source(150, seed=seed, nesting=5) for seed in range(12)
        ]
        expected = [evaluate_expression(s, grammar=split_grammar) for s in sources]
        trees = [parse_expression(s, split_grammar) for s in sources]
        with CompilationService(
            "threads", max_in_flight=6, receive_timeout=TIMEOUT
        ) as service:
            futures = [
                service.submit(CompilationJob(expr_compiler, tree=tree, machines=3))
                for tree in trees
            ]
            values = [f.result().root_attributes["value"] for f in futures]
            stats = service.stats()
        assert values == expected
        assert stats.jobs_completed == 12
        assert stats.jobs_failed == 0
        assert stats.jobs_in_flight == 0
        assert stats.sessions_opened == 12

    @requires_fork
    def test_concurrent_jobs_on_process_pool(self, split_grammar, expr_compiler):
        sources = [
            random_expression_source(150, seed=seed, nesting=5) for seed in range(6)
        ]
        expected = [evaluate_expression(s, grammar=split_grammar) for s in sources]
        trees = [parse_expression(s, split_grammar) for s in sources]
        with CompilationService(
            "processes", max_in_flight=3, receive_timeout=TIMEOUT
        ) as service:
            futures = [
                service.submit(CompilationJob(expr_compiler, tree=tree, machines=3))
                for tree in trees
            ]
            values = [f.result().root_attributes["value"] for f in futures]
        assert values == expected


class TestServiceStats:
    def test_throughput_and_latency_percentiles(self, expr_compiler, big_tree):
        with CompilationService("simulated", max_in_flight=2) as service:
            service.compile_many(
                [CompilationJob(expr_compiler, tree=big_tree, machines=2)] * 4
            )
            stats = service.stats()
        assert stats.jobs_submitted == stats.jobs_completed == 4
        assert stats.throughput > 0
        assert 0 < stats.latency_p50 <= stats.latency_p95
        assert stats.latency_mean > 0
        assert "compiles/s" in stats.summary()

    def test_lifecycle_misuse(self, expr_compiler, big_tree):
        service = CompilationService("simulated")
        service.start()
        service.shutdown()
        with pytest.raises(ServiceError):
            service.submit(CompilationJob(expr_compiler, tree=big_tree))
        service.shutdown()  # idempotent

    def test_submit_after_close_is_a_clear_runtime_error(
        self, expr_compiler, big_tree
    ):
        # Regression: this used to surface as a deep substrate failure (or a
        # vaguely-worded ServiceError); now it is a plain "service is closed",
        # and catchable as RuntimeError without importing repro.service.
        service = CompilationService("simulated")
        service.start()
        service.close()  # the alias shutdown() gained alongside the server
        with pytest.raises(RuntimeError, match="service is closed"):
            service.submit(CompilationJob(expr_compiler, tree=big_tree))
        with pytest.raises(RuntimeError, match="service is closed"):
            service.start()
        service.close()  # idempotent, like shutdown()

    def test_stats_to_dict_is_json_round_trippable(self, expr_compiler, big_tree):
        with CompilationService("simulated", max_in_flight=2) as service:
            service.compile_many(
                [CompilationJob(expr_compiler, tree=big_tree, machines=2)] * 3
            )
            service.note_coalesced(2)
            service.note_queued()
            service.note_rejected()
            stats = service.stats()
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["jobs_completed"] == 3
        assert payload["jobs_coalesced"] == 2
        assert payload["jobs_queued"] == 1
        assert payload["jobs_rejected"] == 1
        assert payload["latency_p50"] > 0
        # The duck-typed cluster counters ride along even off-cluster, and the
        # derived hit rate is materialised so consumers need no arithmetic.
        for key in ("cluster_workers", "cluster_reassignments",
                    "cluster_speculations", "region_cache_hit_rate"):
            assert key in payload
        assert "front door" in stats.summary()

    def test_job_without_tree_or_source(self, expr_compiler):
        with CompilationService("simulated") as service:
            future = service.submit(CompilationJob(expr_compiler))
            with pytest.raises(ServiceError):
                future.result()
            assert service.stats().jobs_failed == 1


# ----------------------------------------------------------- teardown on failure


class TestServiceArtifactCache:
    """Content-addressed region reuse across service jobs (and its counters)."""

    def _program(self):
        from repro.pascal.programs import generate_program

        return generate_program(procedures=10, statements_per_procedure=4, seed=5)

    def test_repeat_submissions_hit_the_region_cache(self):
        source = self._program()
        with CompilationService(
            "threads", receive_timeout=TIMEOUT, artifact_cache=True
        ) as service:
            first = service.submit(
                CompilationJob(language="pascal", source=source, machines=4)
            ).result()
            second = service.submit(
                CompilationJob(language="pascal", source=source, machines=4)
            ).result()
            stats = service.stats()
        # Results are byte-identical; the second job replayed every non-root region.
        assert first.code_text() == second.code_text()
        assert first.region_cache_hits == 0
        assert second.region_cache_hits > 0
        assert second.region_cache_misses >= 1   # the root region always re-runs
        assert stats.region_cache_hits == second.region_cache_hits
        assert stats.region_cache_misses == (
            first.region_cache_misses + second.region_cache_misses
        )
        assert 0.0 < stats.region_cache_hit_rate < 1.0
        assert "region cache" in stats.summary()
        assert "hit rate" in stats.summary()

    def test_cache_off_keeps_counters_zero_and_summary_clean(self):
        source = self._program()
        with CompilationService("threads", receive_timeout=TIMEOUT) as service:
            report = service.submit(
                CompilationJob(language="pascal", source=source, machines=4)
            ).result()
            stats = service.stats()
        assert report.region_cache_hits == 0
        assert report.region_cache_misses == 0
        assert stats.region_cache_hits == 0
        assert stats.region_cache_misses == 0
        assert stats.region_cache_hit_rate == 0.0
        assert "region cache" not in stats.summary()

    def test_cached_results_match_uncached(self):
        source = self._program()
        with CompilationService("threads", receive_timeout=TIMEOUT) as plain:
            reference = plain.submit(
                CompilationJob(language="pascal", source=source, machines=4)
            ).result()
        with CompilationService(
            "threads", receive_timeout=TIMEOUT, artifact_cache=True
        ) as cached:
            jobs = [
                CompilationJob(language="pascal", source=source, machines=4)
                for _ in range(3)
            ]
            reports = cached.compile_many(jobs)
        for report in reports:
            assert report.code_text() == reference.code_text()
            assert report.root_attributes.get("errs") == reference.root_attributes.get(
                "errs"
            )

    def test_shared_cache_instance_is_borrowed(self):
        from repro.incremental import ArtifactCache

        cache = ArtifactCache()
        source = self._program()
        with CompilationService(
            "threads", receive_timeout=TIMEOUT, artifact_cache=cache
        ) as service:
            service.submit(
                CompilationJob(language="pascal", source=source, machines=4)
            ).result()
        assert len(cache) > 0  # artifacts landed in the caller's cache


def _failing_worker_body(transport, **kwargs):
    """A WorkerJob factory whose body dies immediately (module-level: must pickle)."""

    def body():
        raise RuntimeError("boom")
        yield  # pragma: no cover — makes this a generator

    return body()


class TestFailureTeardown:
    """A failing compilation must not leak workers or poison the pool."""

    def test_threads_pool_survives_failing_session(self, expr_compiler, big_tree):
        with ThreadsSubstrate(receive_timeout=TIMEOUT) as pool:
            session = pool.session(2)
            mailbox = session.mailbox("never-written")

            def waiting_body():
                yield Receive(mailbox)

            session.spawn(WorkerJob(factory=_failing_worker_body), name="bad")
            session.spawn(waiting_body(), name="blocked")
            with pytest.raises(BackendError, match="bad"):
                session.run()
            session.close()
            # The pool is still serviceable after the failure.
            report = expr_compiler.compile_tree(big_tree, 3, substrate=pool)
            assert report.root_attributes["value"] is not None

    @requires_fork
    def test_process_pool_survives_failing_job(self, expr_compiler, big_tree):
        with ProcessesSubstrate(receive_timeout=TIMEOUT) as pool:
            session = pool.session(1)
            session.spawn(WorkerJob(factory=_failing_worker_body), name="bad")
            with pytest.raises(BackendError, match="bad"):
                session.run()
            session.close()
            # The same long-lived workers pick up the next (healthy) compilation.
            report = expr_compiler.compile_tree(big_tree, 3, substrate=pool)
            assert report.root_attributes["value"] is not None

    @requires_fork
    def test_unpicklable_job_fails_fast_without_poisoning_pool(
        self, split_grammar, expr_compiler, big_tree
    ):
        from repro.distributed.compiler import CompilerConfiguration

        # A lambda attribute_phase cannot pickle: the submit must fail loudly and
        # quickly, and the shared grammar-bundle cache must NOT be poisoned — a
        # later healthy compilation with the same grammar has to succeed.
        bad_compiler = ParallelCompiler(
            split_grammar, CompilerConfiguration(attribute_phase=lambda name: None)
        )
        reference = expr_compiler.compile_tree(big_tree, 3)
        with ProcessesSubstrate(receive_timeout=TIMEOUT) as pool:
            with pytest.raises(BackendError, match="not picklable"):
                bad_compiler.compile_tree(big_tree, 3, substrate=pool)
            report = expr_compiler.compile_tree(big_tree, 3, substrate=pool)
        assert (
            report.root_attributes["value"] == reference.root_attributes["value"]
        )

    @requires_fork
    def test_process_session_rejects_raw_generators(self):
        with ProcessesSubstrate(receive_timeout=TIMEOUT) as pool:
            session = pool.session(1)

            def body():
                yield

            with pytest.raises(BackendError, match="WorkerJob"):
                session.spawn(body(), name="raw")
            session.close()

    @requires_fork
    def test_mailbox_registry_exhaustion_is_loud(self):
        with ProcessesSubstrate(mailbox_capacity=2, receive_timeout=TIMEOUT) as pool:
            session = pool.session(1)
            session.mailbox("a")
            session.mailbox("b")
            with pytest.raises(BackendError, match="registry exhausted"):
                session.mailbox("c")
            session.close()
            # close() returned the leases, so a fresh session can allocate again.
            other = pool.session(1)
            other.mailbox("d")
            other.close()

    def test_threads_shutdown_mid_run_fails_fast(self):
        pool = ThreadsSubstrate(receive_timeout=TIMEOUT)
        pool.start()
        session = pool.session(1)
        mailbox = session.mailbox("never-written")

        def waiting_body():
            yield Receive(mailbox)

        session.spawn(waiting_body(), name="blocked")
        outcome = {}

        def run_it():
            try:
                session.run()
                outcome["result"] = "success"
            except BackendError:
                outcome["result"] = "error"

        runner = threading.Thread(target=run_it)
        runner.start()
        time.sleep(0.2)
        pool.shutdown()
        runner.join(timeout=10.0)
        # run() must come back promptly with an error — never hang, never report
        # an interrupted compilation as a success.
        assert not runner.is_alive()
        assert outcome["result"] == "error"
        session.close()

    def test_failing_service_job_spares_siblings(self, split_grammar, expr_compiler):
        good = random_expression_source(100, seed=1, nesting=4)
        expected = evaluate_expression(good, grammar=split_grammar)
        with CompilationService("threads", receive_timeout=TIMEOUT) as service:
            bad_future = service.submit(
                CompilationJob(expr_compiler, source="1 +", machines=2,
                               parse=lambda t: parse_expression(t, split_grammar))
            )
            good_future = service.submit(
                CompilationJob(expr_compiler, source=good, machines=2,
                               parse=lambda t: parse_expression(t, split_grammar))
            )
            assert good_future.result().root_attributes["value"] == expected
            with pytest.raises(Exception):
                bad_future.result()
            stats = service.stats()
        assert stats.jobs_failed == 1
        assert stats.jobs_completed == 1
