"""Tests for the dynamic, static and combined evaluators (sequential operation)."""

from __future__ import annotations

import pytest

from repro.evaluation.base import EvaluationError, MissingAttributeError
from repro.evaluation.combined import CombinedEvaluator, CombinedScheduler
from repro.evaluation.dynamic import DynamicEvaluator, DynamicScheduler
from repro.evaluation.static import StaticEvaluator
from repro.exprlang.evaluator import evaluate_expression, random_expression_source
from repro.exprlang.frontend import parse_expression
from repro.grammar.builder import GrammarBuilder, Rule
from repro.tree.node import ParseTreeNode

EXAMPLES = [
    ("1", 1),
    ("2 + 3", 5),
    ("2 * 3 + 4", 10),
    ("2 + 3 * 4", 14),
    ("(2 + 3) * 4", 20),
    ("let x = 3 in 1 + 2 * x ni", 7),          # the paper's appendix example
    ("let x = 2 in let y = x * x in y + x ni ni", 6),
    ("let a = 1 in let a = 2 in a ni + a ni", 3),   # shadowing
    ("let z = 10 in z * z ni", 100),
]


class TestEvaluatorsAgree:
    @pytest.mark.parametrize("source, expected", EXAMPLES)
    @pytest.mark.parametrize("evaluator", ["static", "dynamic", "combined"])
    def test_examples(self, source, expected, evaluator):
        assert evaluate_expression(source, evaluator=evaluator) == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_random_expressions_agree(self, seed):
        source = random_expression_source(40, seed=seed)
        results = {
            evaluator: evaluate_expression(source, evaluator=evaluator)
            for evaluator in ("static", "dynamic", "combined")
        }
        assert len(set(results.values())) == 1

    def test_unknown_evaluator_rejected(self):
        with pytest.raises(ValueError):
            evaluate_expression("1", evaluator="quantum")


class TestStaticEvaluator:
    def test_statistics(self, expr_grammar):
        tree = parse_expression("let x = 3 in 1 + 2 * x ni")
        stats = StaticEvaluator(expr_grammar).evaluate(tree)
        assert stats.rules_evaluated > 0
        assert stats.visits_performed > 0
        assert stats.dynamic_instances == 0
        assert stats.dynamic_fraction == 0.0

    def test_all_attributes_materialized(self, expr_grammar):
        tree = parse_expression("let x = 3 in 1 + 2 * x ni")
        StaticEvaluator(expr_grammar).evaluate(tree)
        for node in tree.walk():
            if node.is_terminal:
                continue
            for name in node.symbol.attribute_names:
                assert node.has_attribute_value(name), (node.symbol.name, name)

    def test_missing_root_inherited_rejected(self):
        builder = GrammarBuilder("needs-inherited")
        builder.name_terminals("ID")
        builder.nonterminal("root", synthesized=["out"], inherited=["env"])
        builder.production("root -> ID", Rule("$$.out", ["$$.env"]))
        grammar = builder.build(start="root")
        from repro.tree.node import make_node, make_terminal

        tree = make_node(
            grammar.productions[0],
            [make_terminal(grammar.terminals["ID"], "x")],
        )
        with pytest.raises(EvaluationError, match="must be supplied"):
            StaticEvaluator(grammar).evaluate(tree)

    def test_root_inherited_supplied(self):
        builder = GrammarBuilder("needs-inherited")
        builder.name_terminals("ID")
        builder.nonterminal("root", synthesized=["out"], inherited=["env"])
        builder.production("root -> ID", Rule("$$.out", ["$$.env"]))
        grammar = builder.build(start="root")
        from repro.tree.node import make_node, make_terminal

        tree = make_node(
            grammar.productions[0],
            [make_terminal(grammar.terminals["ID"], "x")],
        )
        StaticEvaluator(grammar).evaluate(tree, root_inherited={"env": 42})
        assert tree.get_attribute("out") == 42


class TestDynamicEvaluator:
    def test_statistics_report_dependency_graph(self, expr_grammar):
        tree = parse_expression("let x = 3 in 1 + 2 * x ni")
        stats = DynamicEvaluator(expr_grammar).evaluate(tree)
        assert stats.dependency_vertices > 0
        assert stats.dependency_edges > 0
        assert stats.dynamic_instances == stats.dependency_vertices
        assert stats.dynamic_fraction == 1.0

    def test_scheduler_external_attributes_block_completion(self, expr_grammar):
        tree = parse_expression("1 + 2")
        # Treat the root's value as externally needed but the stab of the left child as
        # external: simulate by building a scheduler over the left subtree only.
        left = tree.children[0].children[0]  # expr node for "1"
        scheduler = DynamicScheduler(expr_grammar, left, root_inherited=None)
        # The inherited stab is external and not supplied, so evaluation cannot finish.
        with pytest.raises(MissingAttributeError):
            scheduler.run_to_completion()
        assert scheduler.waiting_on()

    def test_scheduler_supply_unblocks(self, expr_grammar):
        from repro.symtab import st_create

        tree = parse_expression("1 + 2")
        left = tree.children[0].children[0]
        scheduler = DynamicScheduler(expr_grammar, left, root_inherited=None)
        while True:
            task = scheduler.next_task()
            if task is None:
                break
            scheduler.run_task(task)
        assert not scheduler.is_complete()
        scheduler.supply(left, "stab", st_create())
        scheduler.run_to_completion()
        assert scheduler.is_complete()
        assert left.get_attribute("value") == 1


class TestCombinedEvaluator:
    def test_sequential_combined_equals_static(self, expr_grammar):
        source = "let x = 3 in (1 + 2 * x) * (x + x) ni"
        tree_static = parse_expression(source)
        tree_combined = parse_expression(source)
        StaticEvaluator(expr_grammar).evaluate(tree_static)
        CombinedEvaluator(expr_grammar).evaluate(tree_combined)
        assert tree_static.get_attribute("value") == tree_combined.get_attribute("value")

    def test_spine_is_root_only_without_holes(self, expr_grammar):
        tree = parse_expression("1 + 2 * 3")
        scheduler = CombinedScheduler(expr_grammar, tree)
        assert scheduler.spine_size == 1
        scheduler.run_to_completion()
        assert tree.get_attribute("value") == 7

    def test_dynamic_fraction_small_without_holes(self, expr_grammar):
        tree = parse_expression(random_expression_source(60, seed=3))
        scheduler = CombinedScheduler(expr_grammar, tree)
        scheduler.run_to_completion()
        stats = scheduler.statistics()
        assert stats.dynamic_fraction < 0.10  # the paper reports < 10 % with splits

    def test_combined_with_hole(self, expr_grammar):
        """Detach a block subtree, evaluate the remainder, then supply the hole value."""
        from repro.partition.splitter import detach_subtree
        from repro.symtab import st_create

        source = "let x = 3 in 1 + 2 * x ni"
        tree = parse_expression(source)
        block = next(n for n in tree.walk() if n.symbol.name == "block")
        hole = detach_subtree(block)

        scheduler = CombinedScheduler(expr_grammar, tree, hole_nodes=[hole])
        while True:
            task = scheduler.next_task()
            if task is None:
                break
            scheduler.run_task(task)
        assert not scheduler.is_complete()
        # The hole's inherited stab must have been computed and exported.
        assert hole.has_attribute_value("stab")
        # Evaluate the detached block elsewhere (here: statically) and feed it back.
        StaticEvaluator(expr_grammar).evaluate(
            block, root_inherited={"stab": hole.get_attribute("stab")}
        )
        scheduler.supply(hole, "value", block.get_attribute("value"))
        scheduler.run_to_completion()
        assert tree.get_attribute("value") == 7
