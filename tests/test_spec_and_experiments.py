"""Tests for the textual grammar format, the baselines and the experiment drivers."""

from __future__ import annotations

import pytest

from repro.baselines.parallel_make import ParallelMakeModel
from repro.baselines.pipeline import PipelinedCompilerModel
from repro.exprlang.grammar import EXPRESSION_ENVIRONMENT, EXPRESSION_SPEC
from repro.grammar.spec_parser import SpecSyntaxError, parse_grammar_spec


class TestSpecParser:
    def test_expression_spec_round_trip(self, expr_grammar_spec, expr_grammar):
        assert len(expr_grammar_spec.productions) == len(expr_grammar.productions)
        assert set(expr_grammar_spec.nonterminals) == set(expr_grammar.nonterminals)
        block = expr_grammar_spec.nonterminals["block"]
        assert block.splittable and block.min_split_size == 100

    def test_spec_grammar_evaluates(self, expr_grammar_spec):
        from repro.evaluation.static import StaticEvaluator
        from repro.exprlang.frontend import tokenize_expression
        from repro.parsing.parser import Parser

        tree = Parser(expr_grammar_spec).parse(tokenize_expression("let x = 3 in 1 + 2 * x ni"))
        StaticEvaluator(expr_grammar_spec).evaluate(tree)
        assert tree.get_attribute("value") == 7

    def test_missing_separator(self):
        with pytest.raises(SpecSyntaxError, match="%%"):
            parse_grammar_spec("%start s\n")

    def test_unknown_function(self):
        spec = "%name N\n%nosplit s syn(v)\n%start s\n%%\ns : N\n  $$.v = mystery($1.string)\n;\n"
        with pytest.raises(SpecSyntaxError, match="mystery"):
            parse_grammar_spec(spec)

    def test_unknown_declaration(self):
        with pytest.raises(SpecSyntaxError, match="unknown declaration"):
            parse_grammar_spec("%bogus x\n%%\n")

    def test_unterminated_production(self):
        spec = "%name N\n%nosplit s syn(v)\n%start s\n%%\ns : N\n  $$.v = $1.string\n"
        with pytest.raises(SpecSyntaxError, match="not terminated"):
            parse_grammar_spec(spec)

    def test_priority_declaration(self):
        spec = (
            "%name N\n%priority env\n%nosplit s syn(v) inh(env)\n%nosplit t syn(v)\n"
            "%start t\n%%\n"
            "t : s\n  $1.env = $1.v\n  $$.v = $1.v\n;\n"
            "s : N\n  $$.v = $1.string\n;\n"
        )
        grammar = parse_grammar_spec(spec)
        assert grammar.nonterminals["s"].attribute("env").priority


class TestBaselines:
    def test_pipeline_speedup_limited(self):
        report = PipelinedCompilerModel().run(total_work_seconds=10.0, chunks=40)
        assert 1.5 < report.speedup < 3.0
        assert report.pipelined_time < report.sequential_time
        assert set(report.stage_utilization) == {"scan", "parse", "semantics", "codegen", "assemble"}

    def test_pipeline_single_chunk_has_no_speedup(self):
        report = PipelinedCompilerModel().run(total_work_seconds=10.0, chunks=1)
        assert report.speedup <= 1.05

    def test_parallel_make_limited_by_largest_job_and_link(self):
        jobs = [10.0, 1.0, 1.0, 1.0, 1.0]
        report = ParallelMakeModel().run(jobs, machines=5)
        assert report.parallel_time >= 10.0
        assert report.speedup < 1.5

    def test_parallel_make_balanced_jobs(self):
        report = ParallelMakeModel(link_fraction=0.0).run([1.0] * 8, machines=4)
        assert report.speedup == pytest.approx(4.0)


class TestExperimentDrivers:
    """Smoke tests on a deliberately small workload so the unit suite stays fast."""

    @pytest.fixture(scope="class")
    def small_workload(self):
        from repro.experiments.workload import default_workload

        return default_workload(procedures=8, nested_procedures=2,
                                statements_per_procedure=3, seed=7)

    def test_figure5_driver(self, small_workload):
        from repro.experiments.figure5 import run_figure5

        result = run_figure5(small_workload, machine_counts=(1, 3))
        assert set(result.combined_times) == {1, 3}
        assert result.combined_times[3] < result.combined_times[1]
        assert "Figure 5" in result.describe()

    def test_figure6_driver(self, small_workload):
        from repro.experiments.figure6 import run_figure6

        result = run_figure6(small_workload, machines=3)
        assert result.machines == 3
        assert "machine-0" in result.timeline
        assert result.phase_totals
        assert "|" in result.ascii_timeline()

    def test_figure7_driver(self, small_workload):
        from repro.experiments.figure7 import run_figure7

        result = run_figure7(small_workload, machines=3)
        assert result.plan.region_count <= 3
        assert result.rows()[0]["region"] == "a"

    def test_dynamic_fraction_driver(self, small_workload):
        from repro.experiments.dynamic_fraction import run_dynamic_fraction

        result = run_dynamic_fraction(small_workload, machine_counts=(2, 3))
        assert 0.0 < result.average < 0.2

    def test_librarian_driver(self, small_workload):
        from repro.experiments.librarian import run_librarian_comparison

        result = run_librarian_comparison(small_workload, machines=3)
        assert result.bytes_with < result.bytes_without

    def test_sequential_driver(self, small_workload):
        from repro.experiments.sequential import run_sequential_comparison

        result = run_sequential_comparison(small_workload)
        assert result.dynamic_time > result.combined_time > 0
