"""Tests for the execution backends: parity across substrates, pickling, placement."""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module

import pytest

from repro.backends import BACKEND_NAMES, BackendError, create_backend
from repro.backends.base import Compute, Receive
from repro.distributed.compiler import CompilerConfiguration, ParallelCompiler
from repro.distributed.protocol import (
    PROTOCOL_MESSAGES,
    AssembledCodeMessage,
    AssembleRequest,
    AttributeMessage,
    CodeFragmentMessage,
    ResultMessage,
    SubtreeMessage,
)
from repro.exprlang.evaluator import random_expression_source
from repro.exprlang.frontend import parse_expression
from repro.exprlang.grammar import expression_grammar
from repro.strings.descriptors import ConcatDescriptor, LeafDescriptor, LiteralDescriptor
from repro.strings.rope import Rope
from repro.tree.linearize import linearize


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


requires_fork = pytest.mark.skipif(
    not _fork_available(), reason="processes backend requires the fork start method"
)

REAL_BACKENDS = ["threads", pytest.param("processes", marks=requires_fork), "sockets"]


@pytest.fixture(scope="module")
def split_grammar():
    """Expression grammar with a low split threshold so small trees decompose."""
    return expression_grammar(min_split_size=60)


@pytest.fixture(scope="module")
def big_expression(split_grammar):
    source = random_expression_source(250, seed=11, nesting=6)
    return parse_expression(source, split_grammar)


@pytest.fixture(scope="module")
def pascal_setup():
    from repro.pascal import PascalCompiler, generate_program

    compiler = PascalCompiler()
    source = generate_program(procedures=10, statements_per_procedure=3, seed=3)
    return compiler, compiler.parse(source)


class TestBackendFactory:
    def test_known_names(self):
        assert BACKEND_NAMES == ("simulated", "threads", "processes", "sockets")
        for name in ("simulated", "threads"):
            assert create_backend(name, machines=2).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            create_backend("quantum", machines=2)
        with pytest.raises(ValueError):
            ParallelCompiler(
                expression_grammar(), backend="quantum"
            ).compile_tree(parse_expression("1 + 2", expression_grammar()), 1)


class TestBackendParity:
    """The same workload must produce identical results on every substrate."""

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_expression_value_matches_simulated(self, split_grammar, big_expression, backend):
        compiler = ParallelCompiler(split_grammar)
        simulated = compiler.compile_tree(big_expression, 4)
        real = compiler.compile_tree(big_expression, 4, backend=backend)
        assert real.backend == backend
        assert real.root_attributes["value"] == simulated.root_attributes["value"]
        assert real.decomposition.region_count == simulated.decomposition.region_count
        # One real worker per evaluator region.
        assert real.worker_count == real.decomposition.region_count

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_pascal_code_byte_identical(self, pascal_setup, backend):
        compiler, tree = pascal_setup
        simulated = compiler.compile_tree_parallel(tree, 4)
        real = compiler.compile_tree_parallel(tree, 4, backend=backend)
        assert real.code_text("code") == simulated.code_text("code")
        assert real.root_attributes["errs"] == simulated.root_attributes["errs"]
        assert set(real.root_attributes) == set(simulated.root_attributes)

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_dynamic_evaluator_parity(self, split_grammar, big_expression, backend):
        configuration = CompilerConfiguration(evaluator="dynamic")
        compiler = ParallelCompiler(split_grammar, configuration)
        simulated = compiler.compile_tree(big_expression, 3)
        real = compiler.compile_tree(big_expression, 3, backend=backend)
        assert real.root_attributes["value"] == simulated.root_attributes["value"]

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_wall_clock_reported(self, split_grammar, big_expression, backend):
        report = ParallelCompiler(split_grammar, backend=backend).compile_tree(
            big_expression, 3
        )
        assert report.wall_time_seconds > 0
        assert report.wall_evaluation_seconds > 0
        assert report.wall_time_seconds >= report.wall_evaluation_seconds
        # Real substrates report wall-clock evaluation time, not simulated seconds.
        assert report.evaluation_time > 0
        # Modelled-cluster telemetry does not exist off the simulator.
        assert report.timeline == {}
        assert report.utilization == {}
        assert report.network_messages > 0

    def test_simulated_wall_clock_also_reported(self, split_grammar, big_expression):
        report = ParallelCompiler(split_grammar).compile_tree(big_expression, 3)
        assert report.backend == "simulated"
        assert report.wall_time_seconds > 0
        assert report.timeline


class TestPrecompiledTablesParity:
    """The precompiled evaluation tables must reproduce the seed dict-based path
    exactly — same attribute values, same statistics — on every substrate."""

    ALL_BACKENDS = ["simulated"] + REAL_BACKENDS

    @pytest.fixture(scope="class")
    def pascal_reference(self):
        """The seed path: dict/AttributeRef lookups, simulated substrate."""
        from repro.pascal import generate_program
        from repro.pascal.grammar import pascal_grammar

        grammar = pascal_grammar()
        compiler = ParallelCompiler(
            grammar, CompilerConfiguration(use_precompiled_tables=False)
        )
        from repro.pascal.compiler import PascalCompiler

        tree = PascalCompiler().parse(
            generate_program(procedures=10, statements_per_procedure=3, seed=3)
        )
        report = compiler.compile_tree(tree, 4)
        return grammar, tree, report

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_pascal_report_matches_reference(self, pascal_reference, backend):
        grammar, tree, reference = pascal_reference
        compiler = ParallelCompiler(grammar)  # tables on by default
        report = compiler.compile_tree(tree, 4, backend=backend)
        assert report.code_text("code") == reference.code_text("code")
        assert report.root_attributes["errs"] == reference.root_attributes["errs"]
        assert set(report.root_attributes) == set(reference.root_attributes)
        assert vars(report.statistics) == vars(reference.statistics)
        by_region = {entry.region_id: entry for entry in report.evaluator_reports}
        for expected in reference.evaluator_reports:
            assert vars(by_region[expected.region_id].statistics) == vars(
                expected.statistics
            )
        if backend == "simulated":
            # Modelled time must be bit-identical: the tables change how the
            # evaluators compute, never what or in which order.
            assert report.evaluation_time == reference.evaluation_time
            assert report.network_bytes == reference.network_bytes

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_dynamic_evaluator_matches_reference(
        self, split_grammar, big_expression, backend
    ):
        reference = ParallelCompiler(
            split_grammar,
            CompilerConfiguration(evaluator="dynamic", use_precompiled_tables=False),
        ).compile_tree(big_expression, 3)
        report = ParallelCompiler(
            split_grammar, CompilerConfiguration(evaluator="dynamic")
        ).compile_tree(big_expression, 3, backend=backend)
        assert report.root_attributes["value"] == reference.root_attributes["value"]
        assert vars(report.statistics) == vars(reference.statistics)


class TestCompiledPlansParity:
    """Plan-compiled evaluators and the zero-copy ship must be invisible in the
    output: every knob combination reproduces the seed dict path exactly — same
    code, same attributes, same statistics — on every substrate."""

    ALL_BACKENDS = ["simulated"] + REAL_BACKENDS

    @pytest.fixture(scope="class")
    def pascal_case(self):
        from repro.pascal import generate_program
        from repro.pascal.compiler import PascalCompiler
        from repro.pascal.grammar import pascal_grammar

        grammar = pascal_grammar()
        tree = PascalCompiler().parse(
            generate_program(procedures=10, statements_per_procedure=3, seed=3)
        )
        reference = ParallelCompiler(
            grammar, CompilerConfiguration(use_precompiled_tables=False)
        ).compile_tree(tree, 4)
        return grammar, tree, reference

    def _assert_matches(self, report, reference, backend):
        assert report.code_text("code") == reference.code_text("code")
        assert report.root_attributes["errs"] == reference.root_attributes["errs"]
        assert set(report.root_attributes) == set(reference.root_attributes)
        assert vars(report.statistics) == vars(reference.statistics)
        by_region = {entry.region_id: entry for entry in report.evaluator_reports}
        for expected in reference.evaluator_reports:
            assert vars(by_region[expected.region_id].statistics) == vars(
                expected.statistics
            )
        if backend == "simulated":
            assert report.evaluation_time == reference.evaluation_time
            assert report.network_bytes == reference.network_bytes

    @pytest.mark.parametrize("compiled", [True, False], ids=["compiled", "tables"])
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_pascal_matches_seed_reference(self, pascal_case, backend, compiled):
        grammar, tree, reference = pascal_case
        configuration = CompilerConfiguration(use_compiled_plans=compiled)
        report = ParallelCompiler(grammar, configuration).compile_tree(
            tree, 4, backend=backend
        )
        self._assert_matches(report, reference, backend)

    @pytest.mark.parametrize("zero_copy", [True, False], ids=["zero-copy", "mailbox"])
    @pytest.mark.parametrize("backend", ["processes"], ids=["processes"])
    def test_zero_copy_knob_is_invisible(self, pascal_case, backend, zero_copy):
        if not _fork_available():
            pytest.skip("processes backend requires the fork start method")
        grammar, tree, reference = pascal_case
        configuration = CompilerConfiguration(use_zero_copy_ship=zero_copy)
        report = ParallelCompiler(grammar, configuration).compile_tree(
            tree, 4, backend=backend
        )
        self._assert_matches(report, reference, backend)


class TestReportSummary:
    """summary() reports what the backend actually measured, never modelled zeros."""

    def test_simulated_summary_shows_modelled_network(self, split_grammar, big_expression):
        summary = ParallelCompiler(split_grammar).compile_tree(big_expression, 3).summary()
        assert "link busy" in summary
        assert "memory" in summary
        assert "wall clock" not in summary

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_real_summary_shows_wall_clock_and_workers(
        self, split_grammar, big_expression, backend
    ):
        report = ParallelCompiler(split_grammar, backend=backend).compile_tree(
            big_expression, 3
        )
        summary = report.summary()
        assert "wall clock" in summary
        assert f"{report.worker_count} real {backend} worker(s)" in summary
        # The modelled link/memory figures do not exist off the simulator.
        assert "link busy" not in summary
        assert "memory" not in summary


@requires_fork
class TestProcessesPlacement:
    """Acceptance: the paper workload runs on >= 4 real worker processes."""

    def test_paper_workload_on_four_worker_processes(self):
        from repro.experiments.workload import default_workload

        workload = default_workload()
        simulated = workload.compiler.compile_tree_parallel(workload.tree, 4)
        real = workload.compiler.compile_tree_parallel(workload.tree, 4, backend="processes")
        assert real.worker_count >= 4
        assert real.code_text("code") == simulated.code_text("code")
        assert real.wall_evaluation_seconds > 0


def _sample_messages():
    """One instance of every protocol message, with realistic payloads."""
    grammar = expression_grammar()
    tree = parse_expression("1 + 2 * 3", grammar)
    linearized = linearize(tree)
    descriptor = ConcatDescriptor(
        LeafDescriptor(1, 1, 4),
        ConcatDescriptor(LiteralDescriptor(Rope.leaf("mid")), LeafDescriptor(2, 1, 5)),
    )
    return [
        SubtreeMessage(
            region_id=1,
            parent_region=0,
            tree=linearized,
            unique_base=10_000_000,
            root_inherited={"env": ()},
            label="S",
        ),
        AttributeMessage(
            source_region=1,
            target_region=0,
            direction="up",
            name="code",
            value=descriptor,
            size=12,
            priority=True,
        ),
        CodeFragmentMessage(1, 1, Rope.leaf("movl\tr0, r1\n"), 12),
        ResultMessage(0, {"value": 7, "code": Rope.leaf("halt\n")}, 12),
        AssembleRequest("code", descriptor, descriptor.descriptor_size()),
        AssembledCodeMessage("code", Rope.leaf("movl\tr0, r1\nhalt\n"), 18),
    ]


class TestProtocolPickling:
    """Every wire message must survive multiprocessing transport."""

    def test_sample_covers_whole_vocabulary(self):
        assert {type(message) for message in _sample_messages()} == set(PROTOCOL_MESSAGES)

    @pytest.mark.parametrize(
        "message", _sample_messages(), ids=lambda message: type(message).__name__
    )
    def test_pickle_round_trip(self, message):
        clone = pickle.loads(pickle.dumps(message))
        assert type(clone) is type(message)
        assert clone.size_bytes() == message.size_bytes()

    @requires_fork
    def test_round_trip_through_multiprocessing_queue(self):
        context = multiprocessing.get_context("fork")
        fifo = context.Queue()
        originals = _sample_messages()
        for message in originals:
            fifo.put(message)
        for message in originals:
            clone = fifo.get(timeout=10)
            assert type(clone) is type(message)
            assert clone.size_bytes() == message.size_bytes()
            if isinstance(clone, SubtreeMessage):
                assert clone.tree.records == message.tree.records
            if isinstance(clone, AssembledCodeMessage):
                assert clone.text.flatten() == message.text.flatten()
            if isinstance(clone, CodeFragmentMessage):
                assert clone.text.flatten() == message.text.flatten()
        fifo.close()
        fifo.join_thread()


class TestBackendRobustness:
    def test_blocked_receive_wakes_promptly_on_failure(self):
        """A sleeping receiver is woken by the failure token, not by its timeout."""
        import time as time_module

        backend = create_backend("threads", machines=1, receive_timeout=30)
        mailbox = backend.mailbox("never-written")

        def waiting_body():
            yield Receive(mailbox)

        def failing_body():
            raise RuntimeError("boom")
            yield Compute(0.0)  # pragma: no cover — makes this a generator

        backend.spawn(waiting_body(), name="waiter")
        backend.spawn(failing_body(), name="bad-worker")
        started = time_module.monotonic()
        with pytest.raises(BackendError):
            backend.run()
        # Well under the 30s receive timeout: the wake token did its job.
        assert time_module.monotonic() - started < 5

    def test_drain_fifo_empties_and_settles(self):
        import queue as plain_queue

        from repro.backends.base import drain_fifo

        fifo = plain_queue.Queue()
        for item in range(5):
            fifo.put(item)
        assert drain_fifo(fifo) == 5
        assert drain_fifo(fifo) == 0
        fifo.put("late")
        assert drain_fifo(fifo, settle_timeout=0.05) == 1

    def test_threads_backend_surfaces_worker_failure(self):
        backend = create_backend("threads", machines=1, receive_timeout=5)

        def failing_body():
            raise RuntimeError("boom")
            yield Compute(0.0)  # pragma: no cover — makes this a generator

        backend.spawn(failing_body(), name="bad-worker")
        with pytest.raises(BackendError, match="bad-worker"):
            backend.run()

    def test_threads_backend_receive_times_out(self):
        backend = create_backend("threads", machines=1, receive_timeout=0.2)
        mailbox = backend.mailbox("never-written")

        def waiting_body():
            yield Receive(mailbox)

        backend.spawn(waiting_body(), name="waiter")
        with pytest.raises(BackendError, match="waiter"):
            backend.run()
