"""Tests for parse trees, linearization and decomposition planning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exprlang.evaluator import random_expression_source
from repro.exprlang.frontend import parse_expression
from repro.partition.decomposition import plan_decomposition
from repro.partition.splitter import detach_subtree, splittable_nodes
from repro.tree.linearize import delinearize, linearize
from repro.tree.node import ParseTreeNode
from repro.tree.stats import tree_statistics


class TestTreeNodes:
    def test_walk_and_size(self, expr_grammar):
        tree = parse_expression("1 + 2 * 3")
        assert tree.subtree_size() == sum(1 for _ in tree.walk())
        assert tree.symbol.name == "main_expr"

    def test_parent_and_child_index(self):
        tree = parse_expression("1 + 2")
        expr = tree.children[0]
        assert expr.parent is tree
        assert expr.child_index == 1

    def test_resolve_occurrences(self):
        tree = parse_expression("1 + 2")
        expr = tree.children[0]
        from repro.grammar.productions import AttributeRef

        assert expr.resolve(AttributeRef(0, "value")) is expr
        assert expr.resolve(AttributeRef(1, "value")) is expr.children[0]

    def test_get_unevaluated_attribute_raises(self):
        tree = parse_expression("1")
        with pytest.raises(KeyError):
            tree.get_attribute("value")

    def test_pretty_renders(self):
        text = parse_expression("1 + 2").pretty()
        assert "main_expr" in text
        assert "NUMBER" in text

    def test_statistics(self):
        tree = parse_expression("let x = 3 in x * x ni")
        stats = tree_statistics(tree)
        assert stats.node_count == tree.subtree_size()
        assert stats.terminal_count > 0
        assert stats.max_depth > 3
        assert stats.nodes_by_symbol["block"] == 1


class TestLinearize:
    @pytest.mark.parametrize("source", ["1", "1 + 2 * 3", "let x = 3 in 1 + 2 * x ni"])
    def test_round_trip(self, expr_grammar, source):
        tree = parse_expression(source)
        rebuilt, holes = delinearize(expr_grammar, linearize(tree))
        assert holes == {}
        assert rebuilt.pretty() == tree.pretty()

    def test_round_trip_with_holes(self, expr_grammar):
        tree = parse_expression("let x = 3 in 1 + 2 * x ni")
        block = next(n for n in tree.walk() if n.symbol.name == "block")
        linearized = linearize(tree, holes={block.node_id: 7})
        rebuilt, holes = delinearize(expr_grammar, linearized)
        assert list(holes) == [7]
        assert holes[7].symbol.name == "block"
        assert holes[7].production is None
        # The hole stands in for the whole block subtree.
        assert rebuilt.subtree_size() == tree.subtree_size() - block.subtree_size() + 1

    def test_size_bytes_positive_and_monotonic(self, expr_grammar):
        small = linearize(parse_expression("1 + 2"))
        large = linearize(parse_expression(random_expression_source(40, seed=1)))
        assert 0 < small.size_bytes() < large.size_bytes()

    def test_truncated_records_rejected(self, expr_grammar):
        linearized = linearize(parse_expression("1 + 2"))
        linearized.records.pop()
        with pytest.raises(ValueError):
            delinearize(expr_grammar, linearized)

    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip_random_expressions(self, seed):
        source = random_expression_source(25, seed=seed)
        tree = parse_expression(source)
        from repro.exprlang.grammar import expression_grammar

        rebuilt, _ = delinearize(expression_grammar(), linearize(tree))
        assert rebuilt.pretty() == tree.pretty()


class TestSplitting:
    def test_splittable_nodes_respect_declaration(self, expr_grammar):
        tree = parse_expression("let x = 3 in let y = 2 in x * y ni + x ni")
        nodes = splittable_nodes(tree, min_size=0)
        assert nodes
        assert all(node.symbol.name == "block" for node in nodes)

    def test_detach_subtree(self, expr_grammar):
        tree = parse_expression("let x = 3 in 1 + 2 * x ni")
        block = next(n for n in tree.walk() if n.symbol.name == "block")
        parent = block.parent
        index = block.child_index
        hole = detach_subtree(block)
        assert parent.children[index - 1] is hole
        assert hole.symbol.name == "block"
        assert block.parent is None

    def test_detach_root_rejected(self):
        tree = parse_expression("1")
        with pytest.raises(ValueError):
            detach_subtree(tree)

    def test_plan_decomposition_single_machine(self):
        tree = parse_expression(random_expression_source(80, seed=2))
        plan = plan_decomposition(tree, 1)
        assert plan.region_count == 1
        assert plan.regions[0].root is tree

    def test_plan_decomposition_multiple_regions(self):
        tree = parse_expression(random_expression_source(300, seed=5, nesting=6))
        plan = plan_decomposition(tree, 4)
        assert 1 < plan.region_count <= 4
        total_nodes = sum(region.node_count for region in plan.regions)
        assert total_nodes == tree.subtree_size()
        for region in plan.regions[1:]:
            assert region.root.symbol.name == "block"
            assert region.parent_region is not None

    def test_describe_lists_regions(self):
        tree = parse_expression(random_expression_source(300, seed=5, nesting=6))
        plan = plan_decomposition(tree, 3)
        text = plan.describe()
        assert "region a" in text
