"""The HTTP front door: wire contract, admission, coalescing, sessions, drain.

Unit tests drive the policy pieces (token buckets, the pending bound, the
coalescer, the document store, the router) directly; integration tests stand up
a real loopback server on a background event-loop thread and speak HTTP/1.1 to
it with stdlib ``http.client``, exactly as an external client would.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import re
import threading
import time

import pytest

from repro.api.language import Language, get_language, register_language, \
    unregister_language
from repro.server import (
    AdmissionController,
    AdmissionError,
    Coalescer,
    CompileServer,
    DocumentLimitError,
    DocumentStore,
    RouteError,
    Router,
    SchemaError,
    ServerConfig,
    TokenBucket,
    UnknownDocumentError,
    content_key,
    serve_in_thread,
)
from repro.server.schemas import CompileRequest, EditRequest, OpenRequest
from repro.service import CompilationJob, CompilationService

EXPR_SOURCE = "let x = 3 in 1 + 2 * x ni"

PASCAL_OK = """\
program p;
var i : integer;
begin
  i := 1;
  i := i + 2
end.
"""

#: Undeclared identifier: compiles (HTTP 200) but with a non-empty error list.
PASCAL_BAD = "program p; begin x := 1 end."


# -------------------------------------------------------------------- unit: quota


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, now=clock[0])
        assert all(bucket.acquire(clock[0]) for _ in range(3))
        assert not bucket.acquire(clock[0])
        assert bucket.retry_after(clock[0]) == pytest.approx(0.5)
        clock[0] = 0.5  # one token refilled
        assert bucket.acquire(clock[0])
        assert not bucket.acquire(clock[0])

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
        assert bucket.retry_after(1000.0) == 0.0
        assert bucket.acquire(1000.0) and bucket.acquire(1000.0)
        assert not bucket.acquire(1000.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0, now=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0, now=0.0)


class TestAdmissionController:
    def _controller(self, **kwargs):
        clock = [0.0]
        controller = AdmissionController(clock=lambda: clock[0], **kwargs)
        return controller, clock

    def test_quota_exhaustion_rejects_with_retry_after(self):
        controller, clock = self._controller(
            quota_rate=1.0, quota_burst=2.0, max_pending=10
        )
        assert controller.admit("alice") is True
        controller.release()
        assert controller.admit("alice") is True
        controller.release()
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit("alice")
        assert excinfo.value.reason == "quota"
        assert excinfo.value.retry_after > 0
        # Other tenants have their own buckets.
        assert controller.admit("bob") is True
        controller.release()
        # Time refills alice.
        clock[0] = 2.0
        assert controller.admit("alice") is True
        controller.release()
        assert controller.rejected_quota == 1

    def test_pending_bound_rejects_queue_full(self):
        controller, _ = self._controller(
            quota_rate=1000.0, quota_burst=1000.0, max_pending=2,
            queued_threshold=1,
        )
        assert controller.admit("t") is True      # pending 1, straight in
        assert controller.admit("t") is False     # pending 2, queued
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit("t")
        assert excinfo.value.reason == "queue"
        assert excinfo.value.retry_after > 0
        assert controller.rejected_queue == 1
        assert controller.queued == 1
        controller.release(0.1)
        assert controller.admit("t") is False     # a slot freed up
        controller.release(0.1)
        controller.release(0.1)
        assert controller.pending == 0
        assert controller.peak_pending == 2

    def test_snapshot_is_json_safe(self):
        controller, _ = self._controller()
        controller.admit("t")
        json.dumps(controller.snapshot())


# --------------------------------------------------------------- unit: coalescer


class TestCoalescer:
    def _run(self, coro):
        return asyncio.new_event_loop().run_until_complete(coro)

    def test_concurrent_identical_requests_share_one_compute(self):
        async def scenario():
            coalescer = Coalescer(capacity=4)
            computed = []
            gate = asyncio.Event()

            async def compute():
                computed.append(1)
                await gate.wait()
                return "result"

            tasks = [
                asyncio.ensure_future(coalescer.get_or_compute("k", compute))
                for _ in range(5)
            ]
            await asyncio.sleep(0)  # all five reach the coalescer
            gate.set()
            outcomes = await asyncio.gather(*tasks)
            late = await coalescer.get_or_compute("k", compute)
            return coalescer, computed, outcomes, late

        coalescer, computed, outcomes, late = self._run(scenario())
        assert computed == [1]
        assert [value for value, _ in outcomes] == ["result"] * 5
        assert sorted(how for _, how in outcomes) == ["joined"] * 4 + ["leader"]
        assert late == ("result", "cached")
        assert coalescer.leaders == 1
        assert coalescer.coalesced == 5

    def test_failures_propagate_but_are_not_cached(self):
        async def scenario():
            coalescer = Coalescer(capacity=4)
            attempts = []

            async def failing():
                attempts.append(1)
                await asyncio.sleep(0.01)
                raise RuntimeError("boom")

            tasks = [
                asyncio.ensure_future(coalescer.get_or_compute("k", failing))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            failures = await asyncio.gather(*tasks, return_exceptions=True)

            async def succeeding():
                attempts.append(2)
                return "fine"

            value, how = await coalescer.get_or_compute("k", succeeding)
            return attempts, failures, value, how

        attempts, failures, value, how = self._run(scenario())
        assert attempts == [1, 2]  # the failure was shared, then retried fresh
        assert all(isinstance(f, RuntimeError) for f in failures)
        assert (value, how) == ("fine", "leader")

    def test_cache_result_predicate_and_capacity(self):
        async def scenario():
            coalescer = Coalescer(capacity=2)
            for key in ("a", "b", "c"):
                await coalescer.get_or_compute(key, self._value(key))
            # "a" was evicted by capacity; "c" is still cached.
            assert not coalescer.peek("a")
            assert coalescer.peek("c")
            await coalescer.get_or_compute(
                "reject", self._value("r"), cache_result=lambda _: False
            )
            assert not coalescer.peek("reject")
            return coalescer

        coalescer = self._run(scenario())
        json.dumps(coalescer.snapshot())

    @staticmethod
    def _value(value):
        async def compute():
            return value

        return compute

    def test_content_key_sensitivity(self):
        base = content_key("pascal", "program p;", 2, "combined")
        assert base == content_key("pascal", "program p;", 2, "combined")
        assert base != content_key("pascal", "program p;", 4, "combined")
        assert base != content_key("exprlang", "program p;", 2, "combined")
        # Length framing: ("ab", "c") must not collide with ("a", "bc").
        assert content_key("ab", "c") != content_key("a", "bc")


# ----------------------------------------------------------- unit: document store


class TestDocumentStore:
    def test_bound_refuses_then_frees_on_close(self):
        store = DocumentStore(max_documents=2, idle_ttl=100.0, clock=lambda: 0.0)
        first = store.open(lambda: object(), "t")
        store.open(lambda: object(), "t")
        with pytest.raises(DocumentLimitError):
            store.open(lambda: object(), "t")
        assert store.refused == 1
        store.close(first.sid)
        store.open(lambda: object(), "t")
        assert len(store) == 2

    def test_idle_eviction_with_fake_clock(self):
        clock = [0.0]
        store = DocumentStore(max_documents=8, idle_ttl=10.0, clock=lambda: clock[0])
        session = store.open(lambda: object(), "t")
        clock[0] = 5.0
        assert store.get(session.sid) is session  # touch resets the idle clock
        clock[0] = 14.0
        assert store.evict_idle() == 0            # only 9s idle since the touch
        clock[0] = 16.0
        assert store.evict_idle() == 1
        with pytest.raises(UnknownDocumentError):
            store.get(session.sid)
        assert store.evicted == 1

    def test_full_store_of_idle_sessions_admits_new_ones(self):
        clock = [0.0]
        store = DocumentStore(max_documents=2, idle_ttl=10.0, clock=lambda: clock[0])
        store.open(lambda: object(), "t")
        store.open(lambda: object(), "t")
        clock[0] = 60.0
        # open() sweeps the expired sessions instead of refusing.
        store.open(lambda: object(), "t")
        assert store.evicted == 2 and store.refused == 0

    def test_locked_session_is_never_evicted(self):
        clock = [0.0]
        store = DocumentStore(max_documents=2, idle_ttl=1.0, clock=lambda: clock[0])

        async def scenario():
            # Opened inside the loop, as the server does (asyncio primitives
            # bind to the running loop on older Pythons).
            session = store.open(lambda: object(), "t")
            async with session.lock:
                clock[0] = 100.0
                assert store.evict_idle() == 0
            assert store.evict_idle() == 1

        asyncio.new_event_loop().run_until_complete(scenario())


# ------------------------------------------------------------------ unit: router


class TestRouter:
    def test_match_and_params(self):
        router = Router()
        router.add("POST", "/documents/{sid}/edit", "edit")
        router.add("GET", "/stats", "stats")
        handler, params = router.resolve("POST", "/documents/d1-x/edit")
        assert handler == "edit" and params == {"sid": "d1-x"}
        assert router.resolve("GET", "/stats") == ("stats", {})

    def test_404_vs_405(self):
        router = Router()
        router.add("POST", "/compile", "c")
        with pytest.raises(RouteError) as excinfo:
            router.resolve("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(RouteError) as excinfo:
            router.resolve("GET", "/compile")
        assert excinfo.value.status == 405
        assert excinfo.value.allowed == ("POST",)

    def test_duplicate_route_rejected(self):
        router = Router()
        router.add("POST", "/compile", "a")
        router.add("GET", "/compile", "b")
        with pytest.raises(ValueError):
            router.add("POST", "/compile", "c")


# ------------------------------------------------------------------ unit: schemas


class TestSchemas:
    def test_compile_request_validation(self):
        request = CompileRequest.from_payload(
            {"language": "exprlang", "source": "1", "machines": 4, "tenant": "t"}
        )
        assert request.machines == 4 and request.tenant == "t"
        for bad in (
            None,
            [],
            {"language": "exprlang"},
            {"source": "1"},
            {"language": 3, "source": "1"},
            {"language": "e", "source": "1", "machines": "two"},
            {"language": "e", "source": "1", "machines": True},
            {"language": "e", "source": "1", "machines": 0},
            {"language": "e", "source": "1", "evaluator": "quantum"},
        ):
            with pytest.raises(SchemaError):
                CompileRequest.from_payload(bad)

    def test_edit_request_validation(self):
        request = EditRequest.from_payload({"edits": [[0, 2, "ab"], [5, 5, ""]]})
        assert request.edits == ((0, 2, "ab"), (5, 5, ""))
        for bad in (
            {"edits": []},
            {"edits": [[0, 2]]},
            {"edits": [[2, 0, "x"]]},
            {"edits": [[-1, 0, "x"]]},
            {"edits": [[0, 1, 7]]},
            {"edits": "0,1,x"},
        ):
            with pytest.raises(SchemaError):
                EditRequest.from_payload(bad)

    def test_open_request_defaults(self):
        request = OpenRequest.from_payload({"language": "pascal", "source": "x"})
        assert request.machines == 2 and request.tenant == "anonymous"


# --------------------------------------------------------------- integration kit


class _Client:
    """A keep-alive HTTP/1.1 client over one stdlib connection."""

    def __init__(self, handle, timeout=30.0):
        self.conn = http.client.HTTPConnection(
            handle.host, handle.port, timeout=timeout
        )

    def request(self, method, path, payload=None, headers=None):
        body = json.dumps(payload) if payload is not None else None
        send_headers = dict(headers or {})
        if body:
            send_headers.setdefault("Content-Type", "application/json")
        self.conn.request(method, path, body=body, headers=send_headers)
        response = self.conn.getresponse()
        raw = response.read()
        return response.status, raw, dict(response.getheaders())

    def json(self, method, path, payload=None, headers=None):
        status, raw, headers = self.request(method, path, payload, headers)
        return status, json.loads(raw), headers

    def close(self):
        self.conn.close()


@pytest.fixture
def server_factory():
    handles = []

    def factory(**overrides):
        defaults = dict(port=0, backend="threads", idle_ttl=60.0)
        defaults.update(overrides)
        handle = serve_in_thread(ServerConfig(**defaults))
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        handle.stop()


class _SlowPascal(Language):
    """Pascal with a front-end sleep, so concurrent submissions overlap in flight."""

    def __init__(self, name, delay):
        self.name = name
        self.delay = delay
        self._inner = get_language("pascal")

    def grammar(self):
        return self._inner.grammar()

    def parse(self, source):
        time.sleep(self.delay)
        return self._inner.parse(source)

    def result(self, report):
        return self._inner.result(report)

    def errors(self, report):
        return self._inner.errors(report)


@pytest.fixture
def slow_pascal():
    language = _SlowPascal("slowpascal-test", delay=0.25)
    register_language(language, replace=True)
    yield language
    unregister_language(language.name)


# ------------------------------------------------------------------- integration


class TestHttpEndpoints:
    def test_one_shot_compile_and_health(self, server_factory):
        handle = server_factory()
        client = _Client(handle)
        status, body, _ = client.json("GET", "/healthz")
        assert (status, body["status"]) == (200, "ok")
        status, body, headers = client.json(
            "POST", "/compile", {"language": "exprlang", "source": EXPR_SOURCE}
        )
        assert status == 200 and body["ok"] and body["value"] == 7
        assert headers["X-Repro-Coalesced"] == "leader"
        status, body, _ = client.json(
            "POST", "/compile", {"language": "pascal", "source": PASCAL_OK,
                                 "machines": 4}
        )
        assert status == 200 and body["ok"] and "_main" in body["value"]
        client.close()

    def test_wire_errors(self, server_factory):
        handle = server_factory()
        client = _Client(handle)
        status, body, _ = client.json(
            "POST", "/compile", {"language": "klingon", "source": "x"}
        )
        assert status == 400 and "klingon" in body["error"]
        status, body, _ = client.json("POST", "/compile", {"language": "exprlang"})
        assert status == 400 and "source" in body["error"]
        # Parse errors are a 400 too, with the exception class named.
        status, body, _ = client.json(
            "POST", "/compile", {"language": "exprlang", "source": "let let let"}
        )
        assert status == 400 and "Error" in body["error"]
        status, body, _ = client.json("GET", "/no/such/route")
        assert status == 404
        status, _, headers = client.json("GET", "/compile")
        assert status == 405 and headers["Allow"] == "POST"
        # Non-JSON body.
        client.conn.request("POST", "/compile", body=b"not json",
                            headers={"Content-Type": "application/json"})
        response = client.conn.getresponse()
        assert response.status == 400
        response.read()
        client.close()

    def test_document_editing_session_reuses_regions(self, server_factory):
        from repro.pascal.programs import generate_program

        handle = server_factory()
        client = _Client(handle)
        # Multiple procedures, so the decomposition has regions the edit misses.
        source = generate_program(procedures=6, statements_per_procedure=3, seed=7)
        status, body, _ = client.json(
            "POST", "/documents",
            {"language": "pascal", "source": source, "machines": 4},
        )
        assert status == 201
        sid = body["document"]
        status, cold, _ = client.json("POST", f"/documents/{sid}/recompile")
        assert status == 200 and cold["ok"]
        assert cold["incremental"]["frontend"] == "cold"
        # A one-digit constant tweak in the last assignment statement.
        match = list(re.finditer(r":= (\d)[;\n]", source))[-1]
        replacement = "9" if match.group(1) != "9" else "8"
        status, body, _ = client.json(
            "POST", f"/documents/{sid}/edit",
            {"edits": [[match.start(1), match.end(1), replacement]]},
        )
        assert status == 200 and body["edits_applied"] == 1
        status, warm, _ = client.json("POST", f"/documents/{sid}/recompile")
        assert status == 200 and warm["ok"]
        assert warm["incremental"]["frontend"] in ("splice", "full")
        assert warm["incremental"]["regions_reused"] >= 1
        assert warm["value"] != cold["value"]
        status, body, _ = client.json("DELETE", f"/documents/{sid}")
        assert status == 200 and body["closed"]
        status, body, _ = client.json("POST", f"/documents/{sid}/recompile")
        assert status == 404
        client.close()

    def test_edit_out_of_bounds_is_schema_error(self, server_factory):
        handle = server_factory()
        client = _Client(handle)
        _, body, _ = client.json(
            "POST", "/documents", {"language": "exprlang", "source": EXPR_SOURCE}
        )
        sid = body["document"]
        status, body, _ = client.json(
            "POST", f"/documents/{sid}/edit", {"edits": [[0, 10_000, "x"]]}
        )
        assert status == 400 and "out of bounds" in body["error"]
        client.close()


class TestAdmissionOverHttp:
    def test_quota_exhaustion_yields_429_with_retry_after(self, server_factory):
        handle = server_factory(quota_rate=0.5, quota_burst=2.0)
        client = _Client(handle)
        payload = {"language": "exprlang", "source": EXPR_SOURCE, "tenant": "greedy"}
        for index in range(2):
            # Distinct sources defeat coalescing, so each submission is admitted.
            body = dict(payload, source=f"{index} + {index}")
            status, _, _ = client.json("POST", "/compile", body)
            assert status == 200
        status, body, headers = client.json(
            "POST", "/compile", dict(payload, source="9 + 9")
        )
        assert status == 429
        assert body["reason"] == "quota"
        assert int(headers["Retry-After"]) >= 1
        # Another tenant is unaffected.
        status, _, _ = client.json(
            "POST", "/compile",
            {"language": "exprlang", "source": "8 + 8", "tenant": "patient"},
        )
        assert status == 200
        stats = client.json("GET", "/stats")[1]
        assert stats["service"]["jobs_rejected"] == 1
        assert stats["admission"]["rejected_quota"] == 1
        client.close()

    def test_queue_full_yields_429_with_retry_after(self, server_factory, slow_pascal):
        handle = server_factory(max_in_flight=1, max_pending=1,
                                quota_rate=1000.0, quota_burst=1000.0)
        outcomes = []

        def submit(index):
            client = _Client(handle)
            status, body, headers = client.json(
                "POST", "/compile",
                {"language": slow_pascal.name,
                 "source": PASCAL_OK.replace("i + 2", f"i + {10 + index}")},
            )
            outcomes.append((status, body, headers))
            client.close()

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
            time.sleep(0.03)  # order arrivals: 1 in flight, then the bound trips
        for thread in threads:
            thread.join()
        statuses = sorted(status for status, _, _ in outcomes)
        assert statuses.count(429) >= 1 and statuses.count(200) >= 1
        rejected = [o for o in outcomes if o[0] == 429]
        for status, body, headers in rejected:
            assert body["reason"] == "queue"
            assert int(headers["Retry-After"]) >= 1
        stats = _Client(handle).json("GET", "/stats")[1]
        assert stats["service"]["jobs_rejected"] == len(rejected)
        assert stats["admission"]["rejected_queue"] == len(rejected)

    def test_document_limit_yields_429(self, server_factory):
        handle = server_factory(max_documents=2)
        client = _Client(handle)
        payload = {"language": "exprlang", "source": EXPR_SOURCE}
        sids = [
            client.json("POST", "/documents", payload)[1]["document"]
            for _ in range(2)
        ]
        status, body, headers = client.json("POST", "/documents", payload)
        assert status == 429 and body["reason"] == "documents"
        assert int(headers["Retry-After"]) >= 1
        client.json("DELETE", f"/documents/{sids[0]}")
        status, _, _ = client.json("POST", "/documents", payload)
        assert status == 201
        client.close()

    def test_idle_document_is_evicted(self, server_factory):
        handle = server_factory(idle_ttl=0.2)
        client = _Client(handle)
        _, body, _ = client.json(
            "POST", "/documents", {"language": "exprlang", "source": EXPR_SOURCE}
        )
        sid = body["document"]
        deadline = time.time() + 10.0
        while time.time() < deadline:
            status, body, _ = client.json("POST", f"/documents/{sid}/recompile")
            if status == 404:
                break
            time.sleep(0.3)
        assert status == 404 and "evicted" in body["error"]
        stats = client.json("GET", "/stats")[1]
        assert stats["documents"]["evicted"] >= 1
        client.close()


class TestCoalescingOverHttp:
    BURST = 8

    def _burst(self, handle, payload):
        outcomes = [None] * self.BURST
        barrier = threading.Barrier(self.BURST)

        def submit(index):
            client = _Client(handle)
            barrier.wait()
            outcomes[index] = client.request("POST", "/compile", payload)
            client.close()

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(self.BURST)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return outcomes

    def test_identical_submissions_share_one_compile(
        self, server_factory, slow_pascal
    ):
        handle = server_factory(max_in_flight=4, max_pending=64)
        payload = {"language": slow_pascal.name, "source": PASCAL_OK}
        outcomes = self._burst(handle, payload)
        assert all(status == 200 for status, _, _ in outcomes)
        bodies = {raw for _, raw, _ in outcomes}
        assert len(bodies) == 1  # byte-identical fan-out
        assert json.loads(next(iter(bodies)))["ok"] is True
        stats = _Client(handle).json("GET", "/stats")[1]
        assert stats["service"]["jobs_completed"] == 1
        assert stats["service"]["jobs_coalesced"] == self.BURST - 1
        assert stats["coalescing"]["leaders"] == 1
        roles = [headers["X-Repro-Coalesced"] for _, _, headers in outcomes]
        assert roles.count("leader") == 1

    def test_erroring_compile_is_shared_byte_identically(
        self, server_factory, slow_pascal
    ):
        handle = server_factory(max_in_flight=4)
        payload = {"language": slow_pascal.name, "source": PASCAL_BAD}
        outcomes = self._burst(handle, payload)
        assert all(status == 200 for status, _, _ in outcomes)
        bodies = {raw for _, raw, _ in outcomes}
        assert len(bodies) == 1
        body = json.loads(next(iter(bodies)))
        assert body["ok"] is False
        assert any("undeclared" in error for error in body["errors"])
        stats = _Client(handle).json("GET", "/stats")[1]
        assert stats["service"]["jobs_completed"] == 1
        assert stats["service"]["jobs_coalesced"] == self.BURST - 1

    def test_stragglers_hit_the_result_cache(self, server_factory):
        handle = server_factory()
        client = _Client(handle)
        payload = {"language": "exprlang", "source": EXPR_SOURCE}
        first = client.json("POST", "/compile", payload)
        second = client.json("POST", "/compile", payload)
        assert first[2]["X-Repro-Coalesced"] == "leader"
        assert second[2]["X-Repro-Coalesced"] == "cached"
        assert first[1] == second[1]
        client.close()


class TestDrain:
    def test_sigterm_style_drain_completes_in_flight_work(
        self, server_factory, slow_pascal
    ):
        handle = server_factory(drain_grace=15.0)
        results = {}

        def slow_submit():
            client = _Client(handle)
            results["slow"] = client.json(
                "POST", "/compile", {"language": slow_pascal.name,
                                     "source": PASCAL_OK},
            )
            client.close()

        # A keep-alive connection opened before the listener closes still gets
        # a response during the drain window.
        observer = _Client(handle)
        observer.json("GET", "/healthz")
        worker = threading.Thread(target=slow_submit)
        worker.start()
        time.sleep(0.1)  # the slow parse is now in flight
        handle.request_drain()
        time.sleep(0.05)
        status, body, _ = observer.json(
            "POST", "/compile", {"language": "exprlang", "source": "1 + 1"}
        )
        assert status == 503 and "draining" in body["error"]
        worker.join(timeout=20.0)
        assert not worker.is_alive()
        status, body, _ = results["slow"]
        assert status == 200 and body["ok"]  # in-flight work finished cleanly
        handle.stop()
        with pytest.raises((ConnectionError, http.client.HTTPException, OSError)):
            _Client(handle, timeout=2.0).json("GET", "/healthz")

    def test_drained_service_refuses_submit_with_clear_error(self, slow_pascal):
        # The regression fixed alongside the server: submitting to a closed
        # service is a clear RuntimeError, not a deep substrate failure.
        service = CompilationService("threads")
        service.start()
        service.close()
        with pytest.raises(RuntimeError, match="service is closed"):
            service.submit(CompilationJob(language="exprlang", source="1 + 1"))

    def test_drain_under_load_finishes_inflight_refuses_queued_deadline(
        self, server_factory, slow_pascal
    ):
        # The satellite contract: SIGTERM with a slow compile in flight AND a
        # deadline-bearing request arriving behind it — the in-flight compile
        # finishes 200, the late request gets a *clean* 503 (not a hang, not a
        # 500, not a burned deadline), and shutdown completes.
        handle = server_factory(drain_grace=15.0)
        results = {}

        def slow_submit():
            client = _Client(handle)
            results["slow"] = client.json(
                "POST", "/compile",
                {"language": slow_pascal.name, "source": PASCAL_OK},
            )
            client.close()

        observer = _Client(handle)
        observer.json("GET", "/healthz")
        worker = threading.Thread(target=slow_submit)
        worker.start()
        time.sleep(0.1)  # the slow parse is now in flight
        handle.request_drain()
        time.sleep(0.05)
        started = time.monotonic()
        status, body, _ = observer.json(
            "POST", "/compile",
            {"language": "exprlang", "source": "2 + 2"},
            headers={"X-Repro-Deadline-Ms": "5000"},
        )
        elapsed = time.monotonic() - started
        assert status == 503 and "draining" in body["error"]
        assert elapsed < 5.0  # refused immediately, not queued into the budget
        worker.join(timeout=20.0)
        assert not worker.is_alive()
        status, body, _ = results["slow"]
        assert status == 200 and body["ok"]
        handle.stop()  # raises if the server fails to drain — the clean exit


class TestDeadlines:
    def test_zero_budget_compile_is_a_clean_504(self, server_factory):
        handle = server_factory()
        client = _Client(handle)
        source = "let q = 2 in q + 1 ni"
        status, body, _ = client.json(
            "POST", "/compile",
            {"language": "exprlang", "source": source},
            headers={"X-Repro-Deadline-Ms": "0"},
        )
        assert status == 504
        assert "deadline" in body["error"].lower()
        # A 504 is never cached by the coalescer: a retry with budget succeeds.
        status, body, _ = client.json(
            "POST", "/compile",
            {"language": "exprlang", "source": source},
            headers={"X-Repro-Deadline-Ms": "30000"},
        )
        assert status == 200 and body["value"] == 3
        client.close()

    def test_generous_budget_does_not_change_the_answer(self, server_factory):
        handle = server_factory()
        client = _Client(handle)
        plain_status, plain, _ = client.json(
            "POST", "/compile", {"language": "exprlang", "source": EXPR_SOURCE}
        )
        status, body, _ = client.json(
            "POST", "/compile",
            {"language": "exprlang", "source": EXPR_SOURCE + " "},
            headers={"X-Repro-Deadline-Ms": "60000"},
        )
        assert plain_status == status == 200
        assert body["value"] == plain["value"] == 7
        client.close()

    def test_malformed_deadline_header_is_400(self, server_factory):
        handle = server_factory()
        client = _Client(handle)
        for bad in ("soon", "-5"):
            status, body, _ = client.json(
                "POST", "/compile",
                {"language": "exprlang", "source": "1 + 1"},
                headers={"X-Repro-Deadline-Ms": bad},
            )
            assert status == 400, (bad, body)
            assert "x-repro-deadline-ms" in body["error"]
        client.close()

    def test_expired_deadline_shows_up_in_stats(self, server_factory, slow_pascal):
        # A budget shorter than the slow front end: 504 on the wire, and the
        # service's deadline_misses counter ticks once _execute notices.
        handle = server_factory()
        client = _Client(handle)
        status, body, _ = client.json(
            "POST", "/compile",
            {"language": slow_pascal.name, "source": PASCAL_OK},
            headers={"X-Repro-Deadline-Ms": "100"},
        )
        assert status == 504, body
        patience = time.monotonic() + 5.0
        misses = 0
        while time.monotonic() < patience:
            _, stats, _ = client.json("GET", "/stats")
            misses = stats["service"]["deadline_misses"]
            if misses:
                break
            time.sleep(0.05)
        assert misses >= 1
        for field in ("retries", "worker_respawns", "faults_injected"):
            assert field in stats["service"]
        client.close()


class TestServerFaultPoint:
    def test_injected_request_fault_is_a_500_and_evaporates(self, server_factory):
        from repro.faults import FaultPlan, FaultRule, active

        handle = server_factory()
        client = _Client(handle)
        plan = FaultPlan(seed=2, rules=[
            FaultRule("server.request", action="error", times=1)
        ])
        with active(plan, env=False):
            status, body, _ = client.json("GET", "/healthz")
            assert status == 500 and "injected fault" in body["error"]
            assert plan.injected == 1
        status, body, _ = client.json("GET", "/healthz")  # plan gone: healthy
        assert status == 200 and body["status"] == "ok"
        client.close()


class TestStatsEndpoint:
    def test_stats_is_service_to_dict_plus_server_counters(self, server_factory):
        handle = server_factory()
        client = _Client(handle)
        client.json("POST", "/compile", {"language": "exprlang", "source": "2 + 2"})
        status, stats, _ = client.json("GET", "/stats")
        assert status == 200
        service = stats["service"]
        # The wire form is ServiceStats.to_dict(): every counter present,
        # cluster fields included even off-cluster.
        for field in (
            "jobs_submitted", "jobs_completed", "jobs_failed", "latency_p50",
            "region_cache_hits", "region_cache_hit_rate", "cluster_workers",
            "cluster_reassignments", "cluster_speculations", "jobs_coalesced",
            "jobs_queued", "jobs_rejected", "backend", "throughput",
        ):
            assert field in service
        assert service["jobs_completed"] == 1
        assert stats["server"]["requests_served"] >= 2
        assert stats["admission"]["admitted"] == 1
        client.close()
