"""Tests for the lexer generator, the LALR(1) table builder and the parser driver."""

from __future__ import annotations

import pytest

from repro.grammar.builder import GrammarBuilder, Rule
from repro.parsing.lalr import EOF, build_lalr_table
from repro.parsing.lexer import Lexer, LexerError, Token, TokenSpec
from repro.parsing.parser import ParseError, Parser
from repro.exprlang.frontend import parse_expression, tokenize_expression


class TestLexer:
    def test_basic_tokens(self):
        lexer = Lexer([
            TokenSpec("whitespace", r"\s+", skip=True),
            TokenSpec("NUMBER", r"[0-9]+"),
            TokenSpec("IDENTIFIER", r"[a-z]+"),
            TokenSpec("+", r"\+"),
        ])
        kinds = [t.kind for t in lexer.tokenize("12 + abc")]
        assert kinds == ["NUMBER", "+", "IDENTIFIER"]

    def test_keywords(self):
        lexer = Lexer(
            [TokenSpec("whitespace", r"\s+", skip=True),
             TokenSpec("IDENTIFIER", r"[a-z]+")],
            keywords={"let": "LET"},
        )
        kinds = [t.kind for t in lexer.tokenize("let foo")]
        assert kinds == ["LET", "IDENTIFIER"]

    def test_positions(self):
        tokens = tokenize_expression("1 +\n 22")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[2].line == 2 and tokens[2].column == 2

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize_expression("1 ? 2")

    def test_empty_rule_list_rejected(self):
        with pytest.raises(ValueError):
            Lexer([])


def _list_grammar():
    """A tiny grammar: comma-separated numbers, synthesizing their sum."""
    builder = GrammarBuilder("sumlist")
    builder.name_terminals("NUMBER")
    builder.keywords(",")
    builder.nonterminal("list", synthesized=["total"])
    builder.production(
        "list -> list , NUMBER",
        Rule("$$.total", ["$1.total", "$3.string"], lambda total, text: total + int(text)),
    )
    builder.production(
        "list -> NUMBER",
        Rule("$$.total", ["$1.string"], lambda text: int(text)),
    )
    return builder.build(start="list")


class TestLALR:
    def test_small_grammar_table(self):
        table = build_lalr_table(_list_grammar())
        assert table.state_count > 3
        assert not table.conflicts
        # The initial state must shift NUMBER.
        assert table.action[0]["NUMBER"].kind == "shift"

    def test_expression_grammar_conflicts_resolved_by_precedence(self, expr_grammar):
        table = build_lalr_table(expr_grammar)
        assert table.conflicts == []

    def test_precedence_changes_parse_shape(self, expr_grammar):
        tree = parse_expression("1 + 2 * 3")
        # Root production must be the addition (multiplication binds tighter).
        root_expr = tree.children[0]
        assert root_expr.production.label == "expr -> expr + expr"

    def test_left_associativity(self):
        tree = parse_expression("1 + 2 + 3")
        root_expr = tree.children[0]
        assert root_expr.children[0].production.label == "expr -> expr + expr"

    def test_pascal_grammar_only_dangling_else_conflict(self):
        from repro.pascal.grammar import pascal_grammar

        table = build_lalr_table(pascal_grammar())
        assert len(table.conflicts) == 1
        conflict = table.conflicts[0]
        assert conflict.token == "ELSE"
        assert conflict.chosen.kind == "shift"


class TestParser:
    def test_parse_and_evaluate_tiny_grammar(self):
        grammar = _list_grammar()
        parser = Parser(grammar)
        lexer = Lexer([
            TokenSpec("whitespace", r"\s+", skip=True),
            TokenSpec("NUMBER", r"[0-9]+"),
            TokenSpec(",", r","),
        ])
        tree = parser.parse(lexer.tokenize("1, 2, 3, 4"))
        from repro.evaluation.static import StaticEvaluator

        StaticEvaluator(grammar).evaluate(tree)
        assert tree.get_attribute("total") == 10

    def test_parse_error_reports_expected_tokens(self):
        with pytest.raises(ParseError) as excinfo:
            parse_expression("let x = in 3 ni")
        assert "unexpected token" in str(excinfo.value)

    def test_parse_error_on_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 )")

    def test_terminal_values_recorded(self):
        tree = parse_expression("41 + 1")
        numbers = [n.token_value for n in tree.walk() if n.symbol.name == "NUMBER"]
        assert sorted(numbers) == ["1", "41"]

    def test_unknown_token_kind_rejected(self, expr_grammar):
        parser = Parser(expr_grammar)
        with pytest.raises(ParseError):
            parser.parse([Token("BOGUS", "x", 1, 1)])
