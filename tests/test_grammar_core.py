"""Tests for the attribute-grammar data model (symbols, productions, validation)."""

from __future__ import annotations

import pytest

from repro.grammar.attributes import AttributeDecl, AttributeKind
from repro.grammar.builder import GrammarBuilder, Rule, copy_rule
from repro.grammar.grammar import AttributeGrammar, GrammarError
from repro.grammar.productions import AttributeRef, Production, SemanticRule
from repro.grammar.symbols import Nonterminal, Terminal


class TestSymbols:
    def test_terminal_identity(self):
        assert Terminal("PLUS") == Terminal("PLUS")
        assert hash(Terminal("PLUS")) == hash(Terminal("PLUS"))
        assert Terminal("PLUS") != Terminal("MINUS")

    def test_terminal_and_nonterminal_with_same_name_differ(self):
        assert Terminal("expr") != Nonterminal("expr")

    def test_name_terminal_has_value_attribute(self):
        ident = Terminal("IDENTIFIER", "string")
        assert ident.attribute_names == ("string",)
        assert ident.has_attribute("string")
        assert not ident.has_attribute("value")

    def test_keyword_terminal_has_no_attributes(self):
        assert Terminal("LET").attribute_names == ()

    def test_empty_symbol_name_rejected(self):
        with pytest.raises(ValueError):
            Terminal("")

    def test_nonterminal_attribute_declaration(self):
        expr = Nonterminal("expr")
        expr.declare(AttributeDecl("value", AttributeKind.SYNTHESIZED))
        expr.declare(AttributeDecl("stab", AttributeKind.INHERITED))
        assert {d.name for d in expr.synthesized} == {"value"}
        assert {d.name for d in expr.inherited} == {"stab"}
        assert expr.attribute("value").is_synthesized

    def test_duplicate_attribute_declaration_rejected(self):
        expr = Nonterminal("expr")
        expr.declare(AttributeDecl("value", AttributeKind.SYNTHESIZED))
        with pytest.raises(ValueError):
            expr.declare(AttributeDecl("value", AttributeKind.INHERITED))

    def test_unknown_attribute_lookup_raises(self):
        with pytest.raises(KeyError):
            Nonterminal("expr").attribute("missing")


class TestAttributeRef:
    @pytest.mark.parametrize(
        "text, position, name",
        [
            ("$$.value", 0, "value"),
            ("lhs.code", 0, "code"),
            ("$0.code", 0, "code"),
            ("$3.stab", 3, "stab"),
            ("  $1.x ", 1, "x"),
        ],
    )
    def test_parse(self, text, position, name):
        ref = AttributeRef.parse(text)
        assert ref.position == position
        assert ref.name == name

    @pytest.mark.parametrize("text", ["value", "$x.value", "foo.value", "$1.", "$-1.x"])
    def test_parse_malformed(self, text):
        with pytest.raises(ValueError):
            AttributeRef.parse(text)

    def test_equality_and_hash(self):
        assert AttributeRef(1, "x") == AttributeRef(1, "x")
        assert hash(AttributeRef(1, "x")) == hash(AttributeRef(1, "x"))
        assert AttributeRef(1, "x") != AttributeRef(2, "x")


class TestProduction:
    def _simple(self):
        expr = Nonterminal("expr")
        expr.declare(AttributeDecl("value", AttributeKind.SYNTHESIZED))
        number = Terminal("NUMBER", "string")
        production = Production(expr, [number])
        return expr, number, production

    def test_symbol_at(self):
        expr, number, production = self._simple()
        assert production.symbol_at(0) is expr
        assert production.symbol_at(1) is number
        with pytest.raises(IndexError):
            production.symbol_at(2)

    def test_rule_referencing_unknown_attribute_rejected(self):
        expr, number, production = self._simple()
        with pytest.raises(ValueError):
            production.add_rule(
                SemanticRule(AttributeRef(0, "missing"), [], lambda: 0)
            )

    def test_defined_and_used_occurrences(self):
        expr = Nonterminal("expr")
        expr.declare(AttributeDecl("value", AttributeKind.SYNTHESIZED))
        expr.declare(AttributeDecl("stab", AttributeKind.INHERITED))
        plus = Terminal("+")
        production = Production(expr, [expr, plus, expr])
        defined = set(production.defined_occurrences())
        used = set(production.used_occurrences())
        assert AttributeRef(0, "value") in defined
        assert AttributeRef(1, "stab") in defined
        assert AttributeRef(3, "stab") in defined
        assert AttributeRef(0, "stab") in used
        assert AttributeRef(1, "value") in used
        assert AttributeRef(3, "value") in used

    def test_rule_defining_lookup(self):
        expr, number, production = self._simple()
        rule = SemanticRule(AttributeRef(0, "value"), [AttributeRef(1, "string")], int)
        production.add_rule(rule)
        assert production.rule_defining(AttributeRef(0, "value")) is rule
        assert production.rule_defining(AttributeRef(0, "other")) is None


class TestGrammarValidation:
    def test_expression_grammar_is_valid(self, expr_grammar):
        expr_grammar.validate()  # should not raise
        assert expr_grammar.rule_count() >= 15
        assert len(expr_grammar.productions) == 8

    def test_missing_rule_detected(self):
        builder = GrammarBuilder("bad")
        builder.name_terminals("NUMBER")
        builder.nonterminal("root", synthesized=["value"])
        builder.production("root -> NUMBER")  # no rule for root.value
        with pytest.raises(GrammarError, match="no semantic rule defines"):
            builder.build(start="root")

    def test_duplicate_rule_detected(self):
        builder = GrammarBuilder("bad")
        builder.name_terminals("NUMBER")
        builder.nonterminal("root", synthesized=["value"])
        builder.production(
            "root -> NUMBER",
            Rule("$$.value", ["$1.string"], int),
            Rule("$$.value", ["$1.string"], int),
        )
        with pytest.raises(GrammarError, match="more than once"):
            builder.build(start="root")

    def test_nonterminal_without_production_detected(self):
        builder = GrammarBuilder("bad")
        builder.name_terminals("NUMBER")
        builder.nonterminal("root", synthesized=["value"])
        builder.nonterminal("orphan", synthesized=["value"])
        builder.production("root -> NUMBER", Rule("$$.value", ["$1.string"], int))
        with pytest.raises(GrammarError, match="has no productions"):
            builder.build(start="root")

    def test_unreachable_nonterminal_detected(self):
        builder = GrammarBuilder("bad")
        builder.name_terminals("NUMBER")
        builder.nonterminal("root", synthesized=["value"])
        builder.nonterminal("island", synthesized=["value"])
        builder.production("root -> NUMBER", Rule("$$.value", ["$1.string"], int))
        builder.production("island -> NUMBER", Rule("$$.value", ["$1.string"], int))
        with pytest.raises(GrammarError, match="unreachable"):
            builder.build(start="root")

    def test_missing_start_symbol(self):
        builder = GrammarBuilder("bad")
        builder.name_terminals("NUMBER")
        builder.nonterminal("root", synthesized=["value"])
        builder.production("root -> NUMBER", Rule("$$.value", ["$1.string"], int))
        with pytest.raises(GrammarError):
            builder.build()

    def test_summary_mentions_counts(self, expr_grammar):
        summary = expr_grammar.summary()
        assert "8 productions" in summary
        assert "semantic rules" in summary


class TestBuilder:
    def test_copy_rule_helper(self):
        rule = copy_rule("$1.stab", "$$.stab").to_semantic_rule()
        assert rule.target == AttributeRef(1, "stab")
        assert rule.evaluate(["x"]) == "x"

    def test_copy_rule_requires_single_argument(self):
        with pytest.raises(ValueError):
            Rule("$$.value", ["$1.a", "$2.b"])

    def test_unknown_lhs_rejected(self):
        builder = GrammarBuilder()
        builder.name_terminals("NUMBER")
        with pytest.raises(GrammarError, match="unknown nonterminal"):
            builder.production("mystery -> NUMBER")

    def test_implicit_keyword_terminals(self):
        builder = GrammarBuilder()
        builder.nonterminal("root", synthesized=["value"])
        builder.name_terminals("NUMBER")
        builder.production(
            "root -> NUMBER ; NUMBER",
            Rule("$$.value", ["$1.string"], int),
        )
        grammar = builder.build(start="root")
        assert ";" in grammar.terminals

    def test_priority_attribute_must_be_declared(self):
        builder = GrammarBuilder()
        with pytest.raises(GrammarError, match="priority"):
            builder.nonterminal("root", synthesized=["value"], priority=["missing"])

    def test_split_declaration_recorded(self, expr_grammar):
        block = expr_grammar.nonterminals["block"]
        assert block.splittable
        assert block.min_split_size == 100
        assert expr_grammar.nonterminals["expr"].splittable is False
        assert [nt.name for nt in expr_grammar.split_nonterminals] == ["block"]
