"""Differential tests for the plan-compiled evaluators.

Three evaluation paths coexist per grammar — the seed dict/``AttributeRef`` path
(``use_tables=False``), the precompiled tables (``use_compiled=False``) and the
plan-compiled generated code (the default) — and they must be indistinguishable:
same attribute values, same errors, same statistics, bit for bit, on every
substrate.  These tests fuzz random expression workloads through all three paths
and compare everything the paths could possibly diverge on.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.analysis.plan_compiler import (
    compiled_rules,
    compiled_segments,
    rules_source,
    segments_source,
)
from repro.analysis.visit_sequences import build_evaluation_plan
from repro.distributed.compiler import CompilerConfiguration, ParallelCompiler
from repro.evaluation.base import EvaluationError, root_inherited_or_default
from repro.evaluation.combined import CombinedScheduler
from repro.evaluation.dynamic import DynamicScheduler
from repro.evaluation.static import StaticEvaluator
from repro.exprlang.evaluator import random_expression_source
from repro.exprlang.frontend import parse_expression
from repro.exprlang.grammar import expression_grammar
from repro.grammar.builder import GrammarBuilder, Rule
from repro.tree.node import make_node, make_terminal


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


requires_fork = pytest.mark.skipif(
    not _fork_available(), reason="processes backend requires the fork start method"
)

#: (label, use_tables, use_compiled) for the three coexisting evaluation paths.
PATHS = [
    ("seed", False, False),
    ("tables", True, False),
    ("compiled", True, True),
]

#: CompilerConfigurations selecting the same three paths through the full stack.
CONFIGURATIONS = {
    "seed": CompilerConfiguration(use_precompiled_tables=False),
    "tables": CompilerConfiguration(use_compiled_plans=False),
    "compiled": CompilerConfiguration(),
}


class TestSequentialDifferential:
    """Fuzz the three paths through each sequential scheduler: values and the
    complete statistics objects must be bit-identical."""

    @pytest.mark.parametrize("seed", range(6))
    def test_static_evaluator_paths_agree(self, expr_grammar, seed):
        source = random_expression_source(60, seed=seed, nesting=5)
        outcomes = {}
        for label, use_tables, use_compiled in PATHS:
            tree = parse_expression(source, expr_grammar)
            stats = StaticEvaluator(
                expr_grammar, use_tables=use_tables, use_compiled=use_compiled
            ).evaluate(tree)
            outcomes[label] = (tree.get_attribute("value"), vars(stats))
        assert outcomes["compiled"] == outcomes["tables"] == outcomes["seed"]

    @pytest.mark.parametrize("seed", range(6))
    def test_dynamic_scheduler_paths_agree(self, expr_grammar, seed):
        source = random_expression_source(60, seed=seed, nesting=5)
        outcomes = {}
        for label, use_tables, use_compiled in PATHS:
            tree = parse_expression(source, expr_grammar)
            supplied = root_inherited_or_default(tree, None)
            scheduler = DynamicScheduler(
                expr_grammar,
                tree,
                root_inherited=supplied,
                use_tables=use_tables,
                use_compiled=use_compiled,
            )
            stats = scheduler.run_to_completion()
            outcomes[label] = (tree.get_attribute("value"), vars(stats))
        assert outcomes["compiled"] == outcomes["tables"] == outcomes["seed"]

    @pytest.mark.parametrize("seed", range(6))
    def test_combined_scheduler_paths_agree(self, expr_grammar, seed):
        source = random_expression_source(60, seed=seed, nesting=5)
        outcomes = {}
        for label, use_tables, use_compiled in PATHS:
            tree = parse_expression(source, expr_grammar)
            supplied = root_inherited_or_default(tree, None)
            scheduler = CombinedScheduler(
                expr_grammar,
                tree,
                root_inherited=supplied,
                use_tables=use_tables,
                use_compiled=use_compiled,
            )
            stats = scheduler.run_to_completion()
            outcomes[label] = (tree.get_attribute("value"), vars(stats))
        assert outcomes["compiled"] == outcomes["tables"] == outcomes["seed"]


class TestSubstrateDifferential:
    """The three paths through the full parallel compiler, per substrate."""

    @pytest.fixture(scope="class")
    def split_grammar(self):
        return expression_grammar(min_split_size=60)

    def _compile(self, grammar, tree, backend, label):
        compiler = ParallelCompiler(grammar, CONFIGURATIONS[label])
        return compiler.compile_tree(tree, 3, backend=backend)

    @pytest.mark.parametrize("seed", range(3))
    def test_simulated_bit_identical(self, split_grammar, seed):
        source = random_expression_source(220, seed=seed, nesting=6)
        tree = parse_expression(source, split_grammar)
        reports = {
            label: self._compile(split_grammar, tree, "simulated", label)
            for label in CONFIGURATIONS
        }
        reference = reports["seed"]
        for label in ("tables", "compiled"):
            report = reports[label]
            assert report.root_attributes["value"] == reference.root_attributes["value"]
            assert vars(report.statistics) == vars(reference.statistics)
            # Modelled time and traffic must not move: the compiled plans change how
            # rules fire, never what fires or in which order.
            assert report.evaluation_time == reference.evaluation_time
            assert report.network_bytes == reference.network_bytes

    @pytest.mark.parametrize(
        "backend",
        ["threads", pytest.param("processes", marks=requires_fork), "sockets"],
    )
    def test_real_substrates_agree(self, split_grammar, backend):
        source = random_expression_source(220, seed=17, nesting=6)
        tree = parse_expression(source, split_grammar)
        reports = {
            label: self._compile(split_grammar, tree, backend, label)
            for label in CONFIGURATIONS
        }
        reference = reports["seed"]
        for label in ("tables", "compiled"):
            report = reports[label]
            assert report.root_attributes["value"] == reference.root_attributes["value"]
            assert vars(report.statistics) == vars(reference.statistics)


def _needs_inherited_grammar():
    builder = GrammarBuilder("needs-inherited")
    builder.name_terminals("ID")
    builder.nonterminal("root", synthesized=["out"], inherited=["env"])
    builder.production("root -> ID", Rule("$$.out", ["$$.env"]))
    return builder.build(start="root")


def _exploding_grammar():
    def explode(value):
        raise ZeroDivisionError("semantic function failure")

    builder = GrammarBuilder("exploding")
    builder.name_terminals("ID", value_attribute="string")
    builder.nonterminal("root", synthesized=["out"])
    builder.production("root -> ID", Rule("$$.out", ["$1.string"], function=explode))
    return builder.build(start="root")


class TestErrorParity:
    def test_order_violation_message_identical_to_tables(self):
        """A missing argument raises the table path's EvaluationError, byte for byte."""
        grammar = _needs_inherited_grammar()
        errors = {}
        for label, use_tables, use_compiled in PATHS:
            tree = make_node(
                grammar.productions[0],
                [make_terminal(grammar.terminals["ID"], "x")],
            )
            evaluator = StaticEvaluator(
                grammar, use_tables=use_tables, use_compiled=use_compiled
            )
            with pytest.raises(EvaluationError) as excinfo:
                # visit() directly: evaluate() would refuse the missing root
                # inherited before any rule fires.
                evaluator.visit(tree, 1)
            errors[label] = str(excinfo.value)
        assert errors["compiled"] == errors["tables"]
        # The seed path reports the same violation (with its own fetch spelling).
        assert "static evaluation order violation" in errors["seed"]

    def test_semantic_function_errors_propagate_unwrapped(self):
        """Only argument fetches are wrapped: a raising rule function must surface
        its own exception, not an order-violation EvaluationError."""
        grammar = _exploding_grammar()
        for label, use_tables, use_compiled in PATHS:
            tree = make_node(
                grammar.productions[0],
                [make_terminal(grammar.terminals["ID"], "x")],
            )
            evaluator = StaticEvaluator(
                grammar, use_tables=use_tables, use_compiled=use_compiled
            )
            with pytest.raises(ZeroDivisionError):
                evaluator.visit(tree, 1)

    def test_compiled_rule_raises_keyerror_like_fetch_arguments(self):
        """The dynamic/combined compute functions preserve fetch_arguments' contract:
        a missing argument is a raw KeyError for the scheduler to interpret."""
        grammar = _needs_inherited_grammar()
        compute = compiled_rules(grammar)[0][0]
        tree = make_node(
            grammar.productions[0],
            [make_terminal(grammar.terminals["ID"], "x")],
        )
        with pytest.raises(KeyError):
            compute(tree)
        tree.set_attribute("env", 7)
        assert compute(tree) == 7


class TestCompilationCaching:
    def test_rules_cached_per_grammar(self, expr_grammar):
        assert compiled_rules(expr_grammar) is compiled_rules(expr_grammar)

    def test_segments_cached_per_plan(self, expr_grammar, expr_plan):
        first = compiled_segments(expr_grammar, expr_plan)
        assert compiled_segments(expr_grammar, expr_plan) is first
        other_plan = build_evaluation_plan(expr_grammar)
        rebuilt = compiled_segments(expr_grammar, other_plan)
        assert rebuilt is not first
        assert compiled_segments(expr_grammar, other_plan) is rebuilt

    def test_generated_source_is_compilable_python(self, expr_grammar, expr_plan):
        for source, namespace in (
            rules_source(expr_grammar),
            segments_source(expr_grammar, expr_plan),
        ):
            compile(source, "<test>", "exec")
            assert namespace  # semantic functions are bound, never re-implemented

    def test_shapes_match_tables_and_plan(self, expr_grammar, expr_plan):
        from repro.analysis.tables import evaluation_tables

        tables = evaluation_tables(expr_grammar)
        rules = compiled_rules(expr_grammar)
        assert len(rules) == len(tables.productions)
        for production_tables, compiled in zip(tables.productions, rules):
            assert len(compiled) == len(production_tables.rules)
        segments = compiled_segments(expr_grammar, expr_plan)
        assert len(segments) == len(expr_grammar.productions)
        for production in expr_grammar.productions:
            sequence = expr_plan.sequences[production.index]
            assert len(segments[production.index]) == len(sequence.segments)
