"""Tests for the ``repro.api`` front door: registry, Compiler, Session, shims.

Covers the language registry (duplicate/unknown names, custom registration), the
uniform ``Compiler``/``CompileResult`` facade, mixed-language service streams with
parity across all four substrates, equivalence of the deprecated per-workload
entry points with the new API, idempotent Session/Substrate teardown, and the
per-phase (parse vs compile) wall-clock decomposition.
"""

from __future__ import annotations

import multiprocessing
import warnings

import pytest

import repro
from repro import (
    CompilationJob,
    Compiler,
    DuplicateLanguageError,
    GrammarBuilder,
    GrammarLanguage,
    Rule,
    Session,
    UnknownLanguageError,
    available_languages,
    get_language,
    register_language,
)
from repro.api.language import engine_for, unregister_language
from repro.backends import SharedBundle, create_substrate
from repro.exprlang import random_expression_source
from repro.parsing import Lexer, TokenSpec
from repro.pascal import PascalCompiler, generate_program


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


requires_fork = pytest.mark.skipif(
    not _fork_available(), reason="processes substrate requires the fork start method"
)

REAL_SUBSTRATES = ["threads", pytest.param("processes", marks=requires_fork), "sockets"]
ALL_SUBSTRATES = ["simulated"] + REAL_SUBSTRATES

#: Fast receive bound for tests: failures surface in seconds, not minutes.
TIMEOUT = 20.0

EXPR_SOURCE = "let x = 3 in 1 + 2 * x ni"


# ------------------------------------------------------------------ toy language


def _count(text: str) -> int:
    return 1


def _add(left: int, right: int) -> int:
    return left + right


def _wordcount_grammar():
    builder = GrammarBuilder("wordcount")
    builder.name_terminals("WORD", value_attribute="string")
    builder.nonterminal("doc", synthesized=["count"])
    builder.nonterminal("words", synthesized=["count"], split=True, min_split_size=40)
    builder.production("doc -> words", Rule("$$.count", ["$1.count"]))
    builder.production(
        "words -> words WORD",
        Rule("$$.count", ["$1.count", "$2.string"], lambda c, _w: c + 1, name="bump"),
    )
    builder.production(
        "words -> WORD", Rule("$$.count", ["$1.string"], _count, name="one")
    )
    return builder.build(start="doc")


def _tokenize_words(source: str):
    return Lexer([
        TokenSpec("whitespace", r"[ \t\r\n]+", skip=True),
        TokenSpec("WORD", r"[A-Za-z0-9]+"),
    ]).tokenize(source)


@pytest.fixture
def wordcount():
    language = GrammarLanguage(
        "wordcount",
        _wordcount_grammar,
        tokenize=_tokenize_words,
        result_attribute="count",
        error_attribute=None,
    )
    register_language(language, replace=True)
    yield language
    unregister_language("wordcount")


# --------------------------------------------------------------------- registry


class TestRegistry:
    def test_builtin_languages_registered_at_import(self):
        names = available_languages()
        assert "pascal" in names
        assert "exprlang" in names

    def test_get_language_resolves_names_and_instances(self):
        pascal = get_language("pascal")
        assert pascal.name == "pascal"
        assert get_language(pascal) is pascal

    def test_unknown_language_rejected(self):
        with pytest.raises(UnknownLanguageError):
            get_language("klingon")
        with pytest.raises(UnknownLanguageError):
            Compiler("klingon")

    def test_duplicate_registration_rejected(self, wordcount):
        clone = GrammarLanguage(
            "wordcount", _wordcount_grammar, tokenize=_tokenize_words
        )
        with pytest.raises(DuplicateLanguageError):
            register_language(clone)
        # replace=True supersedes and new lookups see the replacement.
        register_language(clone, replace=True)
        assert get_language("wordcount") is clone

    def test_register_rejects_non_language_and_empty_name(self):
        with pytest.raises(repro.LanguageError):
            register_language("pascal")  # type: ignore[arg-type]
        with pytest.raises(repro.LanguageError):
            GrammarLanguage("", _wordcount_grammar, tokenize=_tokenize_words)

    def test_custom_language_compiles_without_touching_internals(self, wordcount):
        source = " ".join(f"w{i}" for i in range(120))
        result = Compiler("wordcount", machines=3).compile(source)
        assert result.value == 120
        assert result.ok
        assert result.report.decomposition.region_count > 1  # genuinely split

    def test_shared_engine_is_cached_per_language(self):
        assert engine_for("exprlang") is engine_for("exprlang")
        assert engine_for("exprlang") is not engine_for("exprlang", "dynamic")

    def test_registry_builds_each_grammar_once(self):
        """Even a Language whose grammar() builds afresh yields one instance."""

        class FreshGrammarLanguage(repro.Language):
            name = "fresh-grammar"

            def __init__(self):
                self.builds = 0

            def grammar(self):
                self.builds += 1
                return _wordcount_grammar()

            def parse(self, source):
                raise NotImplementedError

        language = FreshGrammarLanguage()
        register_language(language, replace=True)
        try:
            default = engine_for("fresh-grammar")
            custom = engine_for(
                "fresh-grammar", configuration=repro.CompilerConfiguration()
            )
            assert default.grammar is custom.grammar
            assert language.builds == 1
        finally:
            unregister_language("fresh-grammar")

    def test_pascal_language_shares_old_api_caches(self):
        """One Pascal grammar and plan per process, old and new API included."""
        from repro.pascal.compiler import _shared_plan
        from repro.pascal.grammar import pascal_grammar

        engine = engine_for("pascal")
        assert engine.grammar is pascal_grammar()
        assert engine.plan is _shared_plan()


# ------------------------------------------------------------- Compiler facade


class TestCompilerFacade:
    def test_exprlang_value(self):
        result = Compiler("exprlang").compile(EXPR_SOURCE)
        assert result.value == 7
        assert result.errors == ()
        assert result.language == "exprlang"
        assert result.code == "7"

    def test_pascal_code_and_report(self):
        source = generate_program(procedures=2, statements_per_procedure=2, seed=3)
        result = Compiler("pascal", machines=3).compile(source)
        assert result.ok
        assert isinstance(result.value, str) and result.value
        assert result.report.machines == 3
        assert result.wall_parse_seconds > 0
        assert result.report.wall_parse_seconds == result.wall_parse_seconds
        assert "parse" in result.summary()

    def test_machines_override_and_validation(self):
        result = Compiler("exprlang", machines=2).compile(EXPR_SOURCE, machines=1)
        assert result.report.machines == 1
        with pytest.raises(ValueError):
            Compiler("exprlang", machines=0)

    def test_evaluator_configuration_conflict_rejected(self):
        config = repro.CompilerConfiguration(evaluator="combined")
        with pytest.raises(ValueError):
            Compiler("exprlang", evaluator="dynamic", configuration=config)

    def test_compile_many(self):
        sources = [EXPR_SOURCE, "2 * (3 + 4)"]
        values = [r.value for r in Compiler("exprlang").compile_many(sources)]
        assert values == [7, 14]

    @pytest.mark.parametrize("name", ALL_SUBSTRATES)
    def test_same_value_on_every_substrate(self, name):
        source = random_expression_source(60, seed=11, nesting=4)
        reference = Compiler("exprlang").compile(source).value
        with Session(backend=name, receive_timeout=TIMEOUT) as session:
            assert session.compile("exprlang", source).value == reference


# ------------------------------------------------------ mixed-language service


class TestMixedLanguageService:
    @pytest.mark.parametrize("name", ALL_SUBSTRATES)
    def test_mixed_stream_parity_with_old_entry_points(self, name):
        expr_sources = [random_expression_source(40, seed=s, nesting=4) for s in (1, 2)]
        pascal_source = generate_program(
            procedures=2, statements_per_procedure=2, seed=5
        )

        # The old per-workload entry points (simulated one-shot) are the baseline.
        pascal = PascalCompiler()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            expected_code = pascal.compile_parallel(pascal_source, 3).code_text("code")
            expected_values = [
                repro.evaluate_expression_parallel(source, machines=2)
                for source in expr_sources
            ]

        jobs = [
            CompilationJob(language="exprlang", source=source, machines=2)
            for source in expr_sources
        ]
        jobs.append(CompilationJob(language="pascal", source=pascal_source, machines=3))

        with Session(backend=name, receive_timeout=TIMEOUT) as session:
            with session.service(max_in_flight=2) as service:
                reports = service.compile_many(jobs)

        values = [get_language("exprlang").result(r) for r in reports[:2]]
        code = get_language("pascal").result(reports[2])
        assert values == expected_values
        assert code == expected_code  # byte-identical across substrates

    def test_language_job_validation(self):
        from repro.service import ServiceError

        job = CompilationJob(language="exprlang", label="broken")
        with pytest.raises(ServiceError):
            job.resolve()
        with pytest.raises(ServiceError):
            CompilationJob(label="empty").resolve()

    def test_old_style_compiler_jobs_still_work(self):
        engine = engine_for("exprlang")
        tree = get_language("exprlang").parse(EXPR_SOURCE)
        resolved_engine, resolved_tree = CompilationJob(engine, tree=tree).resolve()
        assert resolved_engine is engine
        assert resolved_tree is tree


# ----------------------------------------------------------- deprecation shims


class TestDeprecationShims:
    def test_compile_parallel_warns_and_matches_new_api(self):
        source = generate_program(procedures=2, statements_per_procedure=2, seed=9)
        pascal = PascalCompiler()
        with pytest.warns(DeprecationWarning):
            old = pascal.compile_parallel(source, 3)
        new = Compiler("pascal", machines=3).compile(source)
        assert old.code_text("code") == new.value
        assert tuple(old.root_attributes["errs"]) == new.errors

    def test_compile_tree_parallel_warns_and_matches_new_api(self):
        source = generate_program(procedures=2, statements_per_procedure=2, seed=9)
        pascal = PascalCompiler()
        tree = pascal.parse(source)
        with pytest.warns(DeprecationWarning):
            old = pascal.compile_tree_parallel(tree, 2)
        new = Compiler("pascal", machines=2).compile_tree(pascal.parse(source))
        assert old.code_text("code") == new.value

    def test_evaluate_expression_parallel_warns_and_matches_new_api(self):
        with pytest.warns(DeprecationWarning):
            old = repro.evaluate_expression_parallel(EXPR_SOURCE, machines=2)
        assert old == Compiler("exprlang").compile(EXPR_SOURCE).value == 7

    def test_shim_honours_custom_grammar(self):
        from repro.exprlang.grammar import expression_grammar

        grammar = expression_grammar(min_split_size=8)
        with pytest.warns(DeprecationWarning):
            value = repro.evaluate_expression_parallel(
                EXPR_SOURCE, machines=2, grammar=grammar
            )
        assert value == 7


# ------------------------------------------------------------ session lifecycle


class TestSessionLifecycle:
    def test_with_block_then_explicit_close_is_idempotent(self):
        with Session(backend="threads", receive_timeout=TIMEOUT) as session:
            assert session.compile("exprlang", EXPR_SOURCE).value == 7
            session.close()  # inside the block
            session.shutdown()  # alias, again
        session.close()  # after the block exit already closed it

    def test_closed_session_rejects_new_work(self):
        session = Session(backend="threads")
        session.start()
        session.close()
        with pytest.raises(repro.backends.BackendError):
            session.start()

    def test_borrowed_substrate_left_running(self):
        pool = create_substrate("threads", receive_timeout=TIMEOUT)
        try:
            with Session(substrate=pool) as session:
                assert session.compile("exprlang", EXPR_SOURCE).value == 7
            # The session closed, the borrowed pool did not.
            with Session(substrate=pool) as again:
                assert again.compile("exprlang", EXPR_SOURCE).value == 7
        finally:
            pool.shutdown()

    @pytest.mark.parametrize("name", ALL_SUBSTRATES)
    def test_substrate_close_is_shutdown_and_idempotent(self, name):
        pool = create_substrate(name, receive_timeout=TIMEOUT)
        with pool:
            pass  # __exit__ shuts down
        pool.close()  # close() after shutdown(): no-op
        pool.shutdown()  # and again
        with pytest.raises(repro.backends.BackendError):
            pool.session(2)

    @requires_fork
    def test_processes_session_close_releases_mailboxes_after_abort(self):
        """Leased registry slots return to the free list on the abort path."""
        pool = create_substrate("processes", receive_timeout=TIMEOUT)
        with pool:
            free_before = len(pool._free_mailboxes)
            session = pool.session(2)
            session.mailbox("one")
            session.mailbox("two")
            assert len(pool._free_mailboxes) == free_before - 2
            session.close()  # never ran: close must return both leases
            session.close()  # idempotent
            assert len(pool._free_mailboxes) == free_before


# ------------------------------------------------------------- per-phase stats


class TestPerPhaseTimings:
    def test_service_stats_decompose_parse_and_compile(self):
        jobs = [
            CompilationJob(language="exprlang", source=EXPR_SOURCE, machines=2)
            for _ in range(4)
        ]
        with Session(backend="threads", receive_timeout=TIMEOUT) as session:
            with session.service(max_in_flight=2) as service:
                reports = service.compile_many(jobs)
                stats = service.stats()
        assert stats.jobs_completed == 4
        assert stats.parse_p50 > 0
        assert stats.compile_p50 > 0
        assert stats.parse_p95 >= stats.parse_p50
        assert stats.compile_p95 >= stats.compile_p50
        # Phases decompose the whole-job latency (same window, same jobs).
        assert stats.parse_p50 + stats.compile_p50 <= stats.latency_p95 * 2
        assert "parse p50" in stats.summary()
        for report in reports:
            assert report.wall_parse_seconds > 0

    def test_report_summary_shows_parse_wall_on_real_substrates(self):
        result = Compiler("exprlang", backend="threads").compile(EXPR_SOURCE)
        assert "parse" in result.report.summary()

    def test_prebuilt_tree_jobs_do_not_pollute_parse_stats(self):
        engine = engine_for("exprlang")
        tree = get_language("exprlang").parse(EXPR_SOURCE)
        with Session(backend="threads", receive_timeout=TIMEOUT) as session:
            with session.service(max_in_flight=1) as service:
                report = service.compile_many(
                    [CompilationJob(engine, tree=tree, machines=2)]
                )[0]
                stats = service.stats()
        assert report.wall_parse_seconds == 0.0
        assert stats.parse_p50 == 0.0  # no parse phase happened, none recorded
        assert stats.compile_p50 > 0


# --------------------------------------------------------- name-keyed bundles


class TestNameKeyedBundles:
    @requires_fork
    def test_bundle_ships_once_across_fresh_compilers(self):
        """Fresh facades for one language share one worker-side cache entry."""
        source = random_expression_source(60, seed=3, nesting=4)
        with create_substrate("processes", receive_timeout=TIMEOUT) as pool:
            for _ in range(3):
                # A brand-new facade per call: without name keying each one would
                # re-ship (or at least re-register) its own grammar bundle.
                compiler = Compiler("exprlang", substrate=pool)
                assert compiler.compile(source).value is not None
            named = [
                ident for ident in pool._shared_ids if ident and ident[0] == "named"
            ]
            assert len(named) == 1

    def test_shared_bundle_unwraps_for_in_process_substrates(self):
        from repro.backends.base import WorkerJob

        def factory(transport, payload):
            assert payload == ("the", "payload")
            return iter(())

        job = WorkerJob(
            factory=factory,
            shared={"payload": SharedBundle("k", ("the", "payload"))},
        )
        job.materialize(object())
