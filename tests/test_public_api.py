"""Public-API snapshot: the package surface is a contract, not an accident.

``repro.__all__`` and ``repro.api.__all__`` must match the checked-in lists below,
and every advertised name must actually resolve.  A deliberate surface change
updates the snapshot here in the same commit; an accidental export (or a dropped
one) fails CI.
"""

from __future__ import annotations

import repro
import repro.api

#: The one front door plus the stable building blocks underneath it.
EXPECTED_REPRO_ALL = sorted([
    # grammars and analyses
    "AttributeGrammar",
    "AttributeKind",
    "GrammarBuilder",
    "GrammarError",
    "Rule",
    "parse_grammar_spec",
    "build_evaluation_plan",
    "check_noncircular",
    "CircularGrammarError",
    "NotOrderedError",
    # sequential evaluators
    "CombinedEvaluator",
    "DynamicEvaluator",
    "EvaluationError",
    "EvaluationStatistics",
    "StaticEvaluator",
    # execution substrates
    "BACKEND_NAMES",
    "SharedBundle",
    "Substrate",
    "create_backend",
    "create_substrate",
    # the parallel-compilation engine and service layer
    "CompilationJob",
    "CompilationReport",
    "CompilationService",
    "CompilerConfiguration",
    "ParallelCompiler",
    "ServiceStats",
    # the HTTP front door over the service
    "CompileServer",
    "ServerConfig",
    # parsing toolkit
    "Lexer",
    "Parser",
    "ParseError",
    "Token",
    "TokenSpec",
    # strings and symbol tables
    "Rope",
    "rope",
    "SymbolTable",
    "st_add",
    "st_create",
    "st_lookup",
    # legacy expression-language entry points (deprecated shims included)
    "evaluate_expression",
    "evaluate_expression_parallel",
    "expression_grammar",
    "parse_expression",
    # the repro.api front door
    "ArtifactCache",
    "Compiler",
    "CompileResult",
    "Document",
    "IncrementalReport",
    "DuplicateLanguageError",
    "GrammarLanguage",
    "Language",
    "LanguageError",
    "Session",
    "UnknownLanguageError",
    "available_languages",
    "get_language",
    "register_language",
    "__version__",
])

EXPECTED_API_ALL = sorted([
    "ArtifactCache",
    "Compiler",
    "CompileResult",
    "Document",
    "IncrementalReport",
    "DuplicateLanguageError",
    "ExprLanguage",
    "GrammarLanguage",
    "Language",
    "LanguageError",
    "PascalLanguage",
    "Session",
    "UnknownLanguageError",
    "attribute_value",
    "available_languages",
    "engine_for",
    "get_language",
    "register_language",
    "unregister_language",
])


def test_repro_all_matches_snapshot():
    assert sorted(repro.__all__) == EXPECTED_REPRO_ALL


def test_api_all_matches_snapshot():
    assert sorted(repro.api.__all__) == EXPECTED_API_ALL


def test_every_advertised_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None, name


def test_no_duplicate_exports():
    assert len(repro.__all__) == len(set(repro.__all__))
    assert len(repro.api.__all__) == len(set(repro.api.__all__))


def test_builtin_languages_available_on_plain_import():
    assert set(repro.available_languages()) >= {"pascal", "exprlang"}
