"""Tests for the discrete-event simulator, network model, machines and cost model."""

from __future__ import annotations

import pytest

from repro.runtime.cluster import Cluster
from repro.runtime.cost import CostModel
from repro.runtime.machine import ActivityKind, Machine
from repro.runtime.network import Network, NetworkParameters
from repro.runtime.simulator import Environment, Get, SimulationError, Timeout


class TestSimulator:
    def test_timeout_ordering(self):
        env = Environment()
        order = []

        def worker(name, delay):
            yield Timeout(delay)
            order.append(name)

        env.process(worker("slow", 2.0))
        env.process(worker("fast", 1.0))
        env.run()
        assert order == ["fast", "slow"]
        assert env.now == pytest.approx(2.0)

    def test_store_put_get(self):
        env = Environment()
        store = env.store()
        received = []

        def consumer():
            item = yield Get(store)
            received.append(item)

        def producer():
            yield Timeout(1.5)
            store.put("payload")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received == ["payload"]
        assert env.now == pytest.approx(1.5)

    def test_blocked_process_reported_unfinished(self):
        env = Environment()
        store = env.store()

        def consumer():
            yield Get(store)

        env.process(consumer(), name="stuck")
        env.run()
        assert [p.name for p in env.unfinished_processes()] == ["stuck"]

    def test_unknown_request_rejected(self):
        env = Environment()

        def bad():
            yield "not-a-request"

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.schedule(-1.0, lambda: None)

    def test_pids_are_per_environment(self):
        # Back-to-back simulations must be independently reproducible: a fresh
        # environment numbers its processes from 1 rather than continuing a
        # process-global counter.
        def idle():
            yield Timeout(0.0)

        first = Environment()
        first.process(idle(), name="a")
        first.process(idle(), name="b")
        second = Environment()
        second.process(idle(), name="c")
        assert [process.pid for process in first.processes] == [1, 2]
        assert [process.pid for process in second.processes] == [1]
        assert second.processes[0].name == "c"


class TestMachine:
    def test_compute_accumulates_busy_time(self):
        env = Environment()
        machine = Machine(env, "m0")

        def work():
            yield from machine.compute(0.5, ActivityKind.CODE_GENERATION)
            yield from machine.compute(0.25, ActivityKind.CODE_GENERATION)

        env.process(work())
        env.run()
        assert machine.busy_time == pytest.approx(0.75)
        assert machine.utilization(env.now) == pytest.approx(1.0)
        # Contiguous same-kind intervals are coalesced for the timeline.
        assert len(machine.activity) == 1

    def test_single_cpu_serialises_colocated_processes(self):
        env = Environment()
        machine = Machine(env, "m0")

        def work():
            yield from machine.compute(1.0)

        env.process(work())
        env.process(work())
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_speed_scales_compute(self):
        env = Environment()
        machine = Machine(env, "fast", speed=2.0)

        def work():
            yield from machine.compute(1.0)

        env.process(work())
        env.run()
        assert env.now == pytest.approx(0.5)


class TestNetwork:
    def test_transfer_time_and_stats(self):
        env = Environment()
        parameters = NetworkParameters(
            bandwidth_bytes_per_second=1000, message_latency=0.1,
            per_message_overhead_bytes=0,
        )
        network = Network(env, parameters)
        mailbox = env.store()
        network.send("a", "b", mailbox, "msg", 500)
        env.run()
        # 500 bytes at 1000 B/s + 0.1 s latency.
        assert env.now == pytest.approx(0.6)
        assert network.stats.messages == 1
        assert network.stats.bytes_sent == 500

    def test_shared_medium_serialises_transfers(self):
        env = Environment()
        parameters = NetworkParameters(
            bandwidth_bytes_per_second=1000, message_latency=0.0,
            per_message_overhead_bytes=0,
        )
        network = Network(env, parameters)
        mailbox = env.store()
        network.send("a", "b", mailbox, "one", 1000)
        network.send("c", "d", mailbox, "two", 1000)
        env.run()
        assert env.now == pytest.approx(2.0)


class TestCluster:
    def test_local_delivery_is_free(self):
        cluster = Cluster(2)
        machine = cluster.machine(0)
        cluster.send(machine, machine, "hello", 10_000)
        cluster.run()
        assert cluster.now == pytest.approx(0.0)
        assert len(machine.mailbox) == 1

    def test_remote_delivery_uses_network(self):
        cluster = Cluster(2)
        cluster.send(cluster.machine(0), cluster.machine(1), "hello", 10_000)
        cluster.run()
        assert cluster.now > 0.0
        assert cluster.network_stats().messages == 1

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Cluster(2, machine_speeds=[1.0])


class TestCostModel:
    def test_rule_costs(self):
        model = CostModel()
        assert model.rule_cost(10) == pytest.approx(10 * model.rule_base_cost)
        assert model.rule_cost(0, extra=2.0) == pytest.approx(2.0 * model.rule_unit_cost)

    def test_dynamic_task_costs_more_than_static(self):
        from repro.evaluation.base import TaskResult

        model = CostModel()
        result = TaskResult(rules_evaluated=1, dependency_work=3)
        assert model.task_cost(result, dynamic=True) > model.task_cost(result, dynamic=False)

    def test_scaled(self):
        model = CostModel()
        faster = model.scaled(0.5)
        assert faster.rule_base_cost == pytest.approx(model.rule_base_cost * 0.5)
        assert faster.bytes_per_tree_node == model.bytes_per_tree_node

    def test_memory_model(self):
        from repro.evaluation.base import EvaluationStatistics

        model = CostModel()
        stats = EvaluationStatistics(dependency_vertices=10, dependency_edges=20)
        assert model.dynamic_graph_memory(stats) == 10 * model.bytes_per_dependency_vertex + 20 * model.bytes_per_dependency_edge


class TestArena:
    def test_high_water_mark_never_decreases(self):
        from repro.alloc.arena import Arena

        arena = Arena()
        arena.allocate("tree", 100)
        arena.allocate("graph", 50)
        assert arena.high_water_mark() == 150
        assert arena.by_kind()["tree"].allocations == 1

    def test_negative_allocation_rejected(self):
        from repro.alloc.arena import Arena

        with pytest.raises(ValueError):
            Arena().allocate("x", -1)

    def test_merge(self):
        from repro.alloc.arena import Arena

        left, right = Arena(), Arena()
        left.allocate("a", 10)
        right.allocate("a", 5)
        right.allocate("b", 1)
        left.merge(right)
        assert left.high_water_mark() == 16
        assert left.by_kind()["a"].bytes_allocated == 15
