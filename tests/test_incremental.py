"""Tests for incremental recompilation: artifacts, dirty regions, documents.

The load-bearing guarantees:

* full builds are byte-identical (values, errors, simulated-time stats) with the
  artifact cache enabled vs disabled, on every substrate;
* an edit-then-recompile equals a cold compile of the edited source;
* a single-region edit re-evaluates only the dirty regions (edited region plus its
  region-tree ancestors), reported in ``CompileResult.incremental``;
* root-context changes (e.g. a global constant edit) are caught by hole-signature
  validation and re-evaluated, never served stale from the cache.
"""

from __future__ import annotations

import multiprocessing
import random
import re

import pytest

from repro import Compiler, Session
from repro.api import get_language
from repro.incremental import ArtifactCache, Document
from repro.incremental.cache import RegionArtifact
from repro.incremental.fingerprint import FingerprintMemo, region_keys
from repro.incremental.frontend import (
    EditEnvelope,
    count_tokens,
    incremental_reparse,
    incremental_scan,
)
from repro.distributed.recording import RegionRecording
from repro.distributed.evaluator_node import EvaluatorReport
from repro.partition.decomposition import plan_decomposition
from repro.pascal.compiler import _shared_parser
from repro.pascal.grammar import pascal_grammar
from repro.pascal.lexer import _LEXER
from repro.pascal.programs import generate_program
from repro.tree.linearize import linearize


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


requires_fork = pytest.mark.skipif(
    not _fork_available(), reason="processes substrate requires the fork start method"
)

ALL_SUBSTRATES = [
    "simulated",
    "threads",
    pytest.param("processes", marks=requires_fork),
    "sockets",
]

MACHINES = 5


@pytest.fixture(scope="module")
def source():
    return generate_program(procedures=8, statements_per_procedure=4, seed=11)


@pytest.fixture(scope="module")
def edited_source(source):
    # A constant tweak inside the *main program body* — content of exactly one
    # region (the root region or the detached statement_list region).
    match = list(re.finditer(r":= (\d)[;\n]", source))[-1]
    return source[: match.start(1)] + "7" + source[match.end(1) :], match


# --------------------------------------------------------------- edit envelope


class TestEditEnvelope:
    def test_single_edit(self):
        env = EditEnvelope()
        env.record(10, 15, 3)
        assert (env.old_lo, env.old_hi, env.new_lo, env.new_hi) == (10, 15, 10, 13)
        assert env.delta == -2

    def test_merge_overlapping_and_disjoint_edits(self):
        reference = "0123456789" * 4
        current = reference
        env = EditEnvelope()
        rng = random.Random(5)
        for _ in range(6):
            start = rng.randint(0, len(current))
            end = rng.randint(start, min(len(current), start + 6))
            insert = "x" * rng.randint(0, 5)
            current = current[:start] + insert + current[end:]
            env.record(start, end, len(insert))
        # Everything outside the envelope must be byte-identical (shifted by delta
        # after it) between the original and the edited text.
        assert reference[: env.old_lo] == current[: env.new_lo]
        assert reference[env.old_hi :] == current[env.new_hi :]

    def test_reset(self):
        env = EditEnvelope()
        env.record(1, 2, 1)
        env.reset()
        assert env.empty


# ------------------------------------------------------------ incremental scan


class TestIncrementalScan:
    def test_random_edits_match_full_scan(self, source):
        rng = random.Random(29)
        text = source
        tokens, spans, _ = _LEXER.scan(text)
        for _ in range(25):
            start = rng.randint(0, len(text) - 2)
            end = min(len(text), start + rng.randint(0, 12))
            insert = rng.choice(["x1", "274", " ", "{c}\n", "y := 2;", ""])
            new_text = text[:start] + insert + text[end:]
            envelope = EditEnvelope()
            envelope.record(start, end, len(insert))
            try:
                got_tokens, got_spans, *_ = incremental_scan(
                    _LEXER, tokens, spans, text, new_text, envelope
                )
            except Exception:
                # Some random edits produce unlexable text ('{' unclosed, stray
                # chars); a full scan must fail identically.
                with pytest.raises(Exception):
                    _LEXER.scan(new_text)
                continue
            full_tokens, full_spans, _ = _LEXER.scan(new_text)
            assert got_tokens == full_tokens
            assert got_spans == full_spans
            text, tokens, spans = new_text, got_tokens, got_spans

    def test_prefix_and_suffix_tokens_are_shared(self, source):
        tokens, spans, _ = _LEXER.scan(source)
        match = list(re.finditer(r"\b\d+\b", source))[10]
        new_text = source[: match.start()] + "55" + source[match.end() :]
        envelope = EditEnvelope()
        envelope.record(match.start(), match.end(), 2)
        got_tokens, _, first_changed, old_resync, new_resync = incremental_scan(
            _LEXER, tokens, spans, source, new_text, envelope
        )
        assert first_changed > 0 and old_resync < len(tokens)
        # Prefix and (for a same-length-class edit) suffix are the same objects.
        assert got_tokens[0] is tokens[0]
        assert got_tokens[-1] is tokens[-1] or got_tokens[-1] == tokens[-1]


# --------------------------------------------------------------- subtree splice


class TestIncrementalReparse:
    def test_splice_equals_full_parse_and_shares_siblings(self, source):
        grammar = pascal_grammar()
        parser = _shared_parser()
        tokens, spans, _ = _LEXER.scan(source)
        tree = parser.parse(tokens)
        counts = {}
        count_tokens(tree, counts)

        match = list(re.finditer(r"\b\d+\b", source))[20]
        new_text = source[: match.start()] + "321" + source[match.end() :]
        envelope = EditEnvelope()
        envelope.record(match.start(), match.end(), 3)
        new_tokens, _, fc, orr, nrr = incremental_scan(
            _LEXER, tokens, spans, source, new_text, envelope
        )
        before = {id(node) for node in tree.walk()}
        new_tree, mode = incremental_reparse(
            grammar, parser, tree, counts, new_tokens, fc, orr, nrr
        )
        assert mode == "splice"
        reference = parser.parse(_LEXER.tokenize(new_text))
        assert linearize(new_tree).records == linearize(reference).records
        # The spliced tree reuses untouched nodes by reference.
        shared = sum(1 for node in new_tree.walk() if id(node) in before)
        assert shared > new_tree.subtree_size() // 2

    def test_unchanged_tokens_reuse_the_tree(self, source):
        grammar = pascal_grammar()
        parser = _shared_parser()
        tokens, spans, _ = _LEXER.scan(source)
        tree = parser.parse(tokens)
        counts = {}
        count_tokens(tree, counts)
        new_tree, mode = incremental_reparse(
            grammar, parser, tree, counts, tokens, 5, 5, 5
        )
        assert mode == "reuse"
        assert new_tree is tree


# ------------------------------------------------------------------ fingerprints


class TestFingerprints:
    def test_stable_across_reparses(self, source):
        language = get_language("pascal")
        grammar = pascal_grammar()
        keys_a = region_keys(
            grammar, plan_decomposition(language.parse(source), MACHINES), "engine"
        )
        keys_b = region_keys(
            grammar, plan_decomposition(language.parse(source), MACHINES), "engine"
        )
        assert keys_a == keys_b  # node ids differ, content does not

    def test_edit_changes_only_affected_region_keys(self, source, edited_source):
        edited, _ = edited_source
        language = get_language("pascal")
        grammar = pascal_grammar()
        keys_a = region_keys(
            grammar, plan_decomposition(language.parse(source), MACHINES), "engine"
        )
        keys_b = region_keys(
            grammar, plan_decomposition(language.parse(edited), MACHINES), "engine"
        )
        changed = [rid for rid in keys_a if keys_a[rid] != keys_b.get(rid)]
        assert len(changed) == 1  # the main-body edit touches one region's content

    def test_engine_digest_isolates_configurations(self, source):
        language = get_language("pascal")
        grammar = pascal_grammar()
        decomposition = plan_decomposition(language.parse(source), MACHINES)
        assert region_keys(grammar, decomposition, "engine-a") != region_keys(
            grammar, decomposition, "engine-b"
        )

    def test_memo_avoids_repacking_surviving_regions(self, source):
        language = get_language("pascal")
        grammar = pascal_grammar()
        tree = language.parse(source)
        decomposition = plan_decomposition(tree, MACHINES)
        memo = FingerprintMemo()
        first = region_keys(grammar, decomposition, "engine", memo)
        assert len(memo) == decomposition.region_count
        second = region_keys(grammar, decomposition, "engine", memo)
        assert first == second


# ------------------------------------------------------------------- the cache


class TestArtifactCache:
    def _artifact(self, key):
        return RegionArtifact(key, RegionRecording(1), EvaluatorReport(1, "m"))

    def test_hit_miss_accounting(self):
        cache = ArtifactCache()
        assert cache.get("a") is None
        cache.put(self._artifact("a"))
        assert cache.get("a") is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert 0 < cache.hit_rate < 1

    def test_lru_eviction(self):
        cache = ArtifactCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.put(self._artifact(key))
        assert "a" not in cache and "b" in cache and "c" in cache
        cache.get("b")
        cache.put(self._artifact("d"))
        assert "c" not in cache and "b" in cache  # b was freshened

    def test_clear(self):
        cache = ArtifactCache()
        cache.put(self._artifact("a"))
        cache.clear()
        assert len(cache) == 0


# ---------------------------------------------------------------- parity matrix


class TestParityMatrix:
    """Cache on vs off, cold vs incremental, across all four substrates."""

    @pytest.mark.parametrize("backend", ALL_SUBSTRATES)
    def test_full_build_identical_with_cache_on_and_off(self, backend, source):
        plain = Compiler("pascal", machines=MACHINES, backend=backend).compile(source)
        with Session(backend=backend, machines=MACHINES) as session:
            document = session.open("pascal", source, machines=MACHINES)
            cached = document.recompile()
        assert cached.value == plain.value
        assert cached.errors == plain.errors
        # Simulated-time stats are byte-identical: recording must not perturb the
        # modelled run (on real substrates evaluation_time is wall clock, so only
        # the deterministic fields are compared there).
        assert cached.report.parse_time == plain.report.parse_time
        if backend == "simulated":
            assert cached.report.evaluation_time == plain.report.evaluation_time
        assert cached.report.statistics == plain.report.statistics
        assert cached.report.memory_bytes == plain.report.memory_bytes
        assert (
            cached.report.decomposition.region_count
            == plain.report.decomposition.region_count
        )

    @pytest.mark.parametrize("backend", ALL_SUBSTRATES)
    def test_edit_then_recompile_equals_cold_compile(
        self, backend, source, edited_source
    ):
        edited, match = edited_source
        reference = Compiler("pascal", machines=MACHINES, backend=backend).compile(
            edited
        )
        with Session(backend=backend, machines=MACHINES) as session:
            document = session.open("pascal", source, machines=MACHINES)
            document.recompile()
            document.edit(match.start(1), match.end(1), "7")
            warm = document.recompile()
        assert document.text == edited
        assert warm.value == reference.value
        assert warm.errors == reference.errors
        assert warm.incremental.regions_reused > 0

    def test_simulated_edit_recompile_statistics_match_cold(self, source, edited_source):
        """On the simulated substrate even the *aggregate statistics* of an
        incremental run match a cold run: replays publish the regions' cached
        reports, and dirty regions re-evaluate identically."""
        edited, match = edited_source
        reference = Compiler("pascal", machines=MACHINES).compile(edited)
        with Session(backend="simulated", machines=MACHINES) as session:
            document = session.open("pascal", source, machines=MACHINES)
            document.recompile()
            document.edit(match.start(1), match.end(1), "7")
            warm = document.recompile()
        assert warm.report.statistics == reference.report.statistics


# ------------------------------------------------------------ dirty scheduling


class TestDirtyRegionScheduling:
    def test_single_region_edit_evaluates_only_dirty_regions(
        self, source, edited_source
    ):
        edited, match = edited_source
        with Session(backend="simulated", machines=MACHINES) as session:
            document = session.open("pascal", source, machines=MACHINES)
            cold = document.recompile()
            assert cold.incremental.frontend == "cold"
            assert cold.incremental.regions_reused == 0
            document.edit(match.start(1), match.end(1), "7")
            warm = document.recompile()
        total = warm.incremental.regions_total
        assert total > 2
        # The edited region plus its region-tree ancestors — never everything.
        assert 0 < warm.incremental.regions_evaluated < total
        assert warm.incremental.regions_reused == total - warm.incremental.regions_evaluated
        assert warm.incremental.dirty_regions  # labels, e.g. ["a"]
        assert warm.report.region_cache_hits == warm.incremental.regions_reused
        assert warm.report.region_cache_misses == warm.incremental.regions_evaluated

    def test_noop_recompile_reuses_everything_but_the_root(self, source):
        with Session(backend="simulated", machines=MACHINES) as session:
            document = session.open("pascal", source, machines=MACHINES)
            cold = document.recompile()
            again = document.recompile()
        assert again.incremental.frontend == "reuse"
        assert again.incremental.regions_evaluated == 1  # the root region only
        assert again.value == cold.value

    def test_root_context_change_invalidates_cached_regions(self, source):
        """Editing a global constant changes the inherited environment of every
        procedure region: hole-signature validation must catch it and re-evaluate
        instead of serving stale artifacts."""
        match = re.search(r"bias = (\d+);", source)
        edited = source[: match.start(1)] + "23" + source[match.end(1) :]
        reference = Compiler("pascal", machines=MACHINES).compile(edited)
        with Session(backend="simulated", machines=MACHINES) as session:
            document = session.open("pascal", source, machines=MACHINES)
            document.recompile()
            document.edit(match.start(1), match.end(1), "23")
            warm = document.recompile()
        assert warm.value == reference.value
        assert warm.errors == reference.errors
        assert warm.incremental.validation_rounds >= 2

    def test_comment_only_edit_keeps_every_region_clean(self, source):
        with Session(backend="simulated", machines=MACHINES) as session:
            document = session.open("pascal", source, machines=MACHINES)
            cold = document.recompile()
            insert_at = source.index(";\n") + 1
            document.insert(insert_at, " { a comment }")
            warm = document.recompile()
        # Tokens are unchanged, so every fingerprint survives: only the forced
        # root region re-evaluates, and the output is identical.
        assert warm.incremental.regions_evaluated == 1
        assert warm.value == cold.value

    def test_cross_document_cache_sharing(self, source):
        with Session(backend="simulated", machines=MACHINES) as session:
            first = session.open("pascal", source, machines=MACHINES)
            first.recompile()
            second = session.open("pascal", source, machines=MACHINES)
            result = second.recompile()
        # A fresh document over identical content hits the session's shared cache.
        assert result.incremental.regions_reused > 0


# ------------------------------------------------------------------- documents


class TestDocument:
    def test_text_and_rope_editing(self):
        document = Document("pascal", "program p; begin writeln(1) end.")
        document.edit(len("program p; begin writeln("), len("program p; begin writeln(") + 1, "42")
        assert "writeln(42)" in document.text
        document.insert(0, "{ header }\n")
        assert document.text.startswith("{ header }")
        assert len(document) == len(document.text)

    def test_invalid_edit_surfaces_parse_error(self, source):
        from repro.parsing.parser import ParseError

        with Session(backend="simulated", machines=MACHINES) as session:
            document = session.open("pascal", source, machines=MACHINES)
            document.recompile()
            document.edit(0, 7, "progrem")  # break the leading keyword
            with pytest.raises(ParseError):
                document.recompile()
            # The document recovers once the text is valid again.
            document.edit(0, 7, "program")
            result = document.recompile()
            assert result.ok

    def test_exprlang_document_incremental(self):
        rng = random.Random(3)
        from repro.exprlang import random_expression_source

        source = random_expression_source(240, seed=9, nesting=6)
        with Session(backend="simulated", machines=4) as session:
            document = session.open("exprlang", source, machines=4)
            cold = document.recompile()
            reference = Compiler("exprlang", machines=4).compile(source)
            assert cold.value == reference.value
            # Tweak one literal; value must track a cold compile of the new text.
            match = list(re.finditer(r"\b\d+\b", source))[-1]
            document.edit(match.start(), match.end(), "9")
            edited = source[: match.start()] + "9" + source[match.end() :]
            warm = document.recompile()
            assert warm.value == Compiler("exprlang", machines=4).compile(edited).value

    def test_document_without_frontend_still_reuses_regions(self, source):
        """A language that exposes no (lexer, parser) pair falls back to full
        parses but keeps region-level artifact reuse."""
        language = get_language("pascal")

        class NoFrontend:
            name = language.name

            def __getattr__(self, attribute):
                return getattr(language, attribute)

            def frontend(self):
                return None

        with Session(backend="simulated", machines=MACHINES) as session:
            document = Document(
                language,
                source,
                machines=MACHINES,
                substrate=session.substrate,
                cache=session.artifact_cache,
            )
            document._frontend = None  # simulate a frontend-less language
            cold = document.recompile()
            assert cold.incremental.frontend == "cold"
            match = list(re.finditer(r":= (\d)[;\n]", source))[-1]
            document.edit(match.start(1), match.end(1), "7")
            warm = document.recompile()
        assert warm.incremental.frontend == "full"
        assert warm.incremental.regions_reused > 0
