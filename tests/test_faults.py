"""Chaos tests: the fault-injection plane, the resilience layer, the invariant.

The chaos invariant, verified cell by cell over ``fault class x substrate``:
under any injected fault the compile either returns the **byte-identical**
result of a fault-free run or raises a **typed** error (:class:`FaultError`,
:class:`BackendError`, :class:`DeadlineExceeded`) within its deadline — never a
hang, never a silent wrong answer, never a leaked worker or shm segment (the
autouse conftest fixture checks segment leaks after every cell).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro import faults
from repro.backends import BackendError, ProcessesSubstrate, create_substrate
from repro.distributed.compiler import ParallelCompiler
from repro.exprlang.evaluator import random_expression_source
from repro.exprlang.frontend import parse_expression
from repro.exprlang.grammar import expression_grammar
from repro.faults import FaultError, FaultPlan, FaultRule
from repro.incremental.cache import ArtifactCache
from repro.incremental.engine import IncrementalCompiler
from repro.resilience import (
    CancelledCompilation,
    CancelToken,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)
from repro.service import CompilationJob, CompilationService

TIMEOUT = 20.0


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


requires_fork = pytest.mark.skipif(
    not _fork_available(), reason="processes backend requires the fork start method"
)


@pytest.fixture(autouse=True)
def no_plan_leaks():
    """A test must never leak its fault plan into the next one."""
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def split_grammar():
    return expression_grammar(min_split_size=60)


@pytest.fixture(scope="module")
def chaos_tree(split_grammar):
    source = random_expression_source(300, seed=11, nesting=6)
    return parse_expression(source, split_grammar)


@pytest.fixture(scope="module")
def expected_value(split_grammar, chaos_tree):
    """The fault-free answer (simulated substrate: deterministic, no plan)."""
    report = ParallelCompiler(split_grammar).compile_tree(chaos_tree, 3)
    return report.root_attributes["value"]


# ------------------------------------------------------------------- unit: plan


class TestFaultPlan:
    def test_rule_fires_deterministically_per_opportunity(self):
        for _ in range(3):  # same seed, same rules: same firing pattern
            plan = FaultPlan(seed=5, rules=[
                FaultRule("p", action="drop", probability=0.5, times=None)
            ])
            fired = [plan.check("p") is not None for _ in range(40)]
            plan2 = FaultPlan(seed=5, rules=[
                FaultRule("p", action="drop", probability=0.5, times=None)
            ])
            assert fired == [plan2.check("p") is not None for _ in range(40)]
            assert any(fired) and not all(fired)

    def test_after_and_times_window(self):
        plan = FaultPlan(rules=[FaultRule("p", times=2, after=3)])
        hits = [plan.check("p") is not None for _ in range(8)]
        assert hits == [False, False, False, True, True, False, False, False]
        assert plan.injected == 2

    def test_match_narrows_to_one_channel(self):
        plan = FaultPlan(rules=[FaultRule("p", match="evaluator-1", times=None)])
        assert plan.check("p", "evaluator-0:inbox") is None
        assert plan.check("p", "evaluator-1:inbox") is not None

    def test_unknown_point_is_never_hit(self):
        plan = FaultPlan(rules=[FaultRule("p")])
        assert plan.check("q") is None and plan.injected == 0

    def test_encode_decode_resets_runtime_counters(self):
        plan = FaultPlan(seed=3, rules=[FaultRule("p", times=1)])
        assert plan.check("p") is not None
        assert plan.check("p") is None  # spent
        shipped = FaultPlan.decode(plan.encode())
        assert shipped.seed == 3 and shipped.rules == plan.rules
        assert shipped.check("p") is not None  # counters start fresh per process

    def test_install_ships_via_environment(self):
        plan = FaultPlan(seed=9, rules=[FaultRule("p")])
        try:
            faults.install(plan)
            assert os.environ[faults.ENV_VAR]
            adopted = faults.load_from_env()
            assert adopted is not None and adopted.seed == 9
        finally:
            faults.uninstall()
        assert faults.ENV_VAR not in os.environ

    def test_corrupt_env_token_disables_injection(self):
        os.environ[faults.ENV_VAR] = "not-a-plan"
        try:
            assert faults.load_from_env() is None
        finally:
            faults.uninstall()

    def test_fault_error_is_typed(self):
        error = FaultError("mailbox.send", "drop", "evaluator-0")
        assert error.point == "mailbox.send" and error.action == "drop"
        assert "mailbox.send" in str(error)

    def test_no_plan_is_a_no_op(self):
        assert faults.plan.ACTIVE is None
        assert faults.check("mailbox.send") is None


# ------------------------------------------------------------- unit: resilience


class TestRetryPolicy:
    def test_exponential_schedule_with_cap(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5)
        assert [policy.delay(n) for n in policy.attempts()] == pytest.approx(
            [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]
        )

    def test_jitter_is_deterministic_and_bounded(self):
        one = RetryPolicy(base_delay=1.0, jitter=0.3, seed=4)
        two = RetryPolicy(base_delay=1.0, jitter=0.3, seed=4)
        factors = set()
        for attempt in (1, 2, 3):
            assert one.delay(attempt) == two.delay(attempt)
            factor = one._jitter_factor(attempt)
            assert 0.7 <= factor <= 1.3
            factors.add(factor)
        assert len(factors) > 1  # jitter actually varies across attempts

    def test_call_retries_then_reraises_last_error(self):
        sleeps, calls = [], []

        def flaky():
            calls.append(1)
            raise FaultError("p", "error")

        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        with pytest.raises(FaultError):
            policy.call(flaky, retry_on=(FaultError,), sleep=sleeps.append)
        assert len(calls) == 3 and len(sleeps) == 2

    def test_call_succeeds_after_transient_failure(self):
        attempts = []

        def transient():
            attempts.append(1)
            if len(attempts) < 3:
                raise FaultError("p")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        assert policy.call(transient, retry_on=(FaultError,)) == "ok"
        assert len(attempts) == 3

    def test_call_never_outlives_its_deadline(self):
        deadline = Deadline(time.monotonic() - 1.0)  # already expired
        with pytest.raises(DeadlineExceeded):
            RetryPolicy().call(lambda: 1, deadline=deadline)


class TestDeadlineAndCancel:
    def test_bound_only_ever_shrinks_a_timeout(self):
        deadline = Deadline.after(10.0)
        assert deadline.bound(2.0) == pytest.approx(2.0, abs=0.1)
        assert deadline.bound(60.0) == pytest.approx(10.0, abs=0.1)
        assert deadline.bound() == pytest.approx(10.0, abs=0.1)

    def test_expired_deadline_raises_typed(self):
        deadline = Deadline.after(0.0, label="test")
        assert deadline.expired and deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded, match="test"):
            deadline.check("thing")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_cancel_token_is_cooperative(self):
        token = CancelToken()
        token.check()  # not cancelled: no-op
        token.cancel("caller gave up")
        assert token.cancelled
        with pytest.raises(CancelledCompilation, match="caller gave up"):
            token.check()


# ------------------------------------------------------------------ chaos matrix

#: One fault-plan factory per fault class.  A point a substrate never reaches
#: simply never fires there — the compile then *must* be byte-identical, which
#: the invariant checks; targeted per-class assertions live in the tests below.
FAULT_RULES = {
    "message-drop": lambda: [FaultRule("mailbox.send", action="drop",
                                       times=1, after=2)],
    "wire-corrupt": lambda: [FaultRule("wire.send", action="corrupt",
                                       times=1, after=2)],
    "worker-crash": lambda: [FaultRule("worker.crash", action="crash",
                                       times=1, after=0)],
    "shm-attach-failure": lambda: [FaultRule("shm.attach", action="error",
                                             times=1)],
    "cache-poison": lambda: [FaultRule("cache.get", action="poison", times=1)],
    "deadline-expiry": lambda: [],
}

SUBSTRATES = [
    "simulated",
    "threads",
    pytest.param("processes", marks=requires_fork),
    "sockets",
]

#: Typed failures the invariant accepts instead of a byte-identical result.
TYPED_FAILURES = (FaultError, BackendError, DeadlineExceeded)


class TestChaosMatrix:
    @pytest.mark.parametrize("substrate_name", SUBSTRATES)
    @pytest.mark.parametrize("fault_class", sorted(FAULT_RULES))
    def test_invariant(self, split_grammar, chaos_tree, expected_value,
                       substrate_name, fault_class):
        plan = FaultPlan(seed=42, rules=FAULT_RULES[fault_class]())
        compiler = ParallelCompiler(split_grammar)
        # A dropped message surfaces as a receive timeout: keep that bound
        # short so the typed failure arrives well inside the cell's budget.
        receive_timeout = 3.0 if fault_class == "message-drop" else TIMEOUT
        with create_substrate(substrate_name, receive_timeout=receive_timeout) as pool:
            if fault_class == "deadline-expiry":
                self._deadline_cell(pool)
                return
            if fault_class == "cache-poison":
                self._cache_poison_cell(compiler, chaos_tree, expected_value,
                                        pool, plan)
                return
            try:
                with faults.active(plan):
                    report = compiler.compile_tree(chaos_tree, 3, substrate=pool)
            except TYPED_FAILURES:
                return  # a typed, deadline-bounded failure satisfies the invariant
            assert report.root_attributes["value"] == expected_value

    @staticmethod
    def _deadline_cell(pool):
        """An expired budget is a typed DeadlineExceeded on every substrate."""
        service = CompilationService(pool)
        service.start()
        try:
            job = CompilationJob(language="exprlang",
                                 source="let x = 3 in 1 + 2 * x ni", machines=2)
            future = service.submit(job, deadline=Deadline.after(0.0, label="cell"))
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=TIMEOUT)
            assert service.stats().deadline_misses >= 1
        finally:
            service.close()

    @staticmethod
    def _cache_poison_cell(compiler, tree, expected_value, pool, plan):
        """A poisoned artifact is detected, re-evaluated, and never believed."""
        cache = ArtifactCache()
        incremental = IncrementalCompiler(compiler, cache)
        warm, _ = incremental.compile_tree(tree, 3, substrate=pool)
        assert warm.root_attributes["value"] == expected_value
        with faults.active(plan):
            report, inc_report = incremental.compile_tree(tree, 3, substrate=pool)
        assert report.root_attributes["value"] == expected_value
        assert plan.injected >= 1  # the poison was actually served...
        assert inc_report.regions_evaluated >= 1  # ...and recompiled around


# ------------------------------------------------------- targeted: crash-proofing


@requires_fork
class TestProcessesCrashRecovery:
    def test_injected_crash_is_respawned_and_result_identical(
        self, split_grammar, chaos_tree, expected_value
    ):
        # after=0: every child's first blocking receive crashes it (counters
        # are per-process), so all in-flight jobs exercise recovery at once.
        plan = FaultPlan(seed=42, rules=[
            FaultRule("worker.crash", action="crash", times=1, after=0)
        ])
        compiler = ParallelCompiler(split_grammar)
        with ProcessesSubstrate(receive_timeout=TIMEOUT) as pool:
            with faults.active(plan):
                report = compiler.compile_tree(chaos_tree, 3, substrate=pool)
            assert report.root_attributes["value"] == expected_value
            assert pool.respawns >= 1
            # The pool stays healthy: a fault-free compile still works on it.
            again = compiler.compile_tree(chaos_tree, 3, substrate=pool)
            assert again.root_attributes["value"] == expected_value

    def test_sigkilled_worker_is_respawned_and_result_identical(
        self, split_grammar, chaos_tree, expected_value
    ):
        # Receive delays (shipped to the children via the environment) stretch
        # the in-flight window so the SIGKILL below reliably lands mid-job.
        plan = FaultPlan(seed=7, rules=[
            FaultRule("mailbox.receive", action="delay", delay=0.1,
                      times=30, after=0)
        ])
        compiler = ParallelCompiler(split_grammar)
        outcome = {}

        def run(pool):
            try:
                outcome["report"] = compiler.compile_tree(
                    chaos_tree, 3, substrate=pool
                )
            except BaseException as error:  # noqa: BLE001 — surfaced below
                outcome["error"] = error

        with ProcessesSubstrate(receive_timeout=TIMEOUT) as pool:
            with faults.active(plan):
                thread = threading.Thread(target=run, args=(pool,))
                thread.start()
                victim_pid = None
                patience = time.monotonic() + 10.0
                while victim_pid is None and time.monotonic() < patience:
                    with pool._lock:
                        for worker in pool._workers:
                            if worker.inflight is not None and worker.process.is_alive():
                                victim_pid = worker.process.pid
                                break
                    time.sleep(0.005)
                assert victim_pid is not None, "no worker ever went in flight"
                os.kill(victim_pid, signal.SIGKILL)
                thread.join(timeout=TIMEOUT)
            assert not thread.is_alive(), "compile hung after SIGKILL"
            if "error" in outcome:
                raise AssertionError(
                    f"SIGKILLed worker failed the compile: {outcome['error']!r}"
                )
            assert outcome["report"].root_attributes["value"] == expected_value
            assert pool.respawns >= 1

    def test_spawn_fault_is_a_typed_failure_not_a_hang(
        self, split_grammar, chaos_tree
    ):
        # Every fork refused: the compile must fail typed, promptly, and leave
        # the pool shut-downable.  env=False — this is a parent-side fault.
        plan = FaultPlan(seed=1, rules=[
            FaultRule("worker.spawn", action="error", times=None)
        ])
        compiler = ParallelCompiler(split_grammar)
        with ProcessesSubstrate(receive_timeout=TIMEOUT) as pool:
            with faults.active(plan, env=False):
                with pytest.raises((BackendError, FaultError)):
                    compiler.compile_tree(chaos_tree, 3, substrate=pool)


# ------------------------------------------------------------- disabled-plane


class TestDisabledPlane:
    def test_results_identical_with_and_without_empty_plan(
        self, split_grammar, chaos_tree, expected_value
    ):
        compiler = ParallelCompiler(split_grammar)
        bare = compiler.compile_tree(chaos_tree, 3, backend="threads")
        with faults.active(FaultPlan(seed=0, rules=())):
            planned = compiler.compile_tree(chaos_tree, 3, backend="threads")
        assert bare.root_attributes["value"] == expected_value
        assert planned.root_attributes["value"] == expected_value

    def test_uninstall_restores_the_no_op_plane(self):
        faults.install(FaultPlan(rules=[FaultRule("p")]))
        faults.uninstall()
        assert faults.plan.ACTIVE is None
        assert os.environ.get(faults.ENV_VAR) is None


# -------------------------------------------------------- service: deadline/cancel


class TestServiceResilience:
    def test_generous_deadline_does_not_change_the_answer(self):
        service = CompilationService("threads")
        service.start()
        try:
            job = CompilationJob(language="exprlang",
                                 source="let x = 3 in 1 + 2 * x ni", machines=2)
            plain = service.submit(job).result(timeout=TIMEOUT)
            bounded = service.submit(
                job, deadline=Deadline.after(TIMEOUT)
            ).result(timeout=TIMEOUT)
            assert bounded.root_attributes == plain.root_attributes
            assert service.stats().deadline_misses == 0
        finally:
            service.close()

    def test_cancel_token_stops_a_queued_job(self):
        service = CompilationService("threads", max_in_flight=1)
        service.start()
        try:
            source = random_expression_source(200, seed=3, nesting=5)
            blocker = service.submit(
                CompilationJob(language="exprlang", source=source, machines=2)
            )
            victim = service.submit(
                CompilationJob(language="exprlang", source=source + " ",
                               machines=2)
            )
            victim.cancel_token.cancel("test gave up")
            with pytest.raises(CancelledCompilation):
                victim.result(timeout=TIMEOUT)
            blocker.result(timeout=TIMEOUT)  # the other job is unaffected
        finally:
            service.close()
