"""The persistent artifact store: codec, atomicity, corruption, gc, tiering.

The store's contract is "pure speed": damage of any kind is a quarantined miss
(never a wrong answer), concurrent writers race benignly through atomic
renames, and a fresh process mounting a populated store recompiles known
sources at warm speed — in the service layer, on documents/sessions, over the
HTTP front door, and for cluster bundle shipping.
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro import Compiler, Session
from repro.backends import create_substrate
from repro.backends.sockets import SocketsSubstrate
from repro.cluster.worker import ClusterWorker
from repro.faults import FaultPlan, FaultRule, active
from repro.incremental.cache import (
    ArtifactCache,
    RegionArtifact,
    decode_artifact,
    encode_artifact,
)
from repro.incremental.document import Document
from repro.distributed.recording import RegionRecording
from repro.server import ServerConfig, serve_in_thread
from repro.service import CompilationJob, CompilationService
from repro.store import (
    ArtifactStore,
    BLOB_MAGIC,
    StoreError,
    content_digest,
    decode_blob,
    encode_blob,
    open_store,
)

EXPR_SOURCE = "let x = 3 in 1 + 2 * x ni"
KEY = "a" * 64  # fingerprint-shaped


def _recording(region_id: int = 1) -> RegionRecording:
    return RegionRecording(
        region_id=region_id,
        input_sigs={},
        sends=[],
        output_sigs={"left": b"\x01\x02"},
    )


# ------------------------------------------------------------------- blob codec


class TestBlobCodec:
    def test_round_trip(self):
        payload = b"some recorded boundary traffic"
        blob = encode_blob(payload)
        assert blob.startswith(BLOB_MAGIC)
        assert decode_blob(blob) == payload

    def test_empty_payload_round_trips(self):
        assert decode_blob(encode_blob(b"")) == b""

    def test_truncated_blob_names_the_gap(self):
        blob = encode_blob(b"x" * 100)
        with pytest.raises(ValueError, match="holds"):
            decode_blob(blob[:-3])

    def test_below_frame_minimum(self):
        with pytest.raises(ValueError, match="frame minimum"):
            decode_blob(b"RS")

    def test_foreign_magic(self):
        blob = b"NOTSTORE" + encode_blob(b"x")[len(BLOB_MAGIC):]
        with pytest.raises(ValueError, match="magic"):
            decode_blob(blob)

    def test_flipped_payload_bit_fails_the_trailer(self):
        blob = bytearray(encode_blob(b"y" * 64))
        blob[len(BLOB_MAGIC) + 8 + 10] ^= 0x01
        with pytest.raises(ValueError, match="integrity trailer"):
            decode_blob(bytes(blob))

    def test_content_digest_is_stable_hex(self):
        digest = content_digest(b"bundle bytes")
        assert digest == content_digest(b"bundle bytes")
        assert digest != content_digest(b"bundle bytes!")
        assert len(digest) == 40 and set(digest) <= set("0123456789abcdef")


# ------------------------------------------------------------------ store basics


class TestArtifactStore:
    def test_write_read_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.write("region", KEY, b"payload")
        assert store.read("region", KEY) == b"payload"
        assert store.contains("region", KEY)
        stats = store.stats()
        assert stats.hits == 1 and stats.writes == 1 and stats.corrupt == 0

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.read("region", "b" * 64) is None
        assert store.stats().misses == 1

    def test_git_style_fanout_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write("region", KEY, b"x")
        expected = os.path.join(
            str(tmp_path), "objects", "region", KEY[:2], KEY[2:]
        )
        assert store.path_of("region", KEY) == expected
        assert os.path.isfile(expected)

    def test_unsafe_names_are_caller_errors(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("", "../escape", "a/b", "nul\x00"):
            with pytest.raises(StoreError):
                store.path_of("region", bad)
        with pytest.raises(StoreError):
            store.write("no/slash", KEY, b"x")

    def test_delete_and_keys(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write("region", "aa" + "0" * 62, b"1")
        store.write("region", "ab" + "0" * 62, b"2")
        assert sorted(store.keys("region")) == ["aa" + "0" * 62, "ab" + "0" * 62]
        assert store.delete("region", "aa" + "0" * 62)
        assert not store.delete("region", "aa" + "0" * 62)  # already gone
        assert list(store.keys("region")) == ["ab" + "0" * 62]

    def test_open_store_coercion(self, tmp_path):
        assert open_store(None) is None
        store = ArtifactStore(tmp_path)
        assert open_store(store) is store
        mounted = open_store(str(tmp_path / "sub"))
        assert isinstance(mounted, ArtifactStore)

    def test_last_write_wins_same_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write("region", KEY, b"first")
        store.write("region", KEY, b"second")
        assert store.read("region", KEY) == b"second"


# ----------------------------------------------------------- damage = miss, only


class TestCorruption:
    def _write_one(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write("region", KEY, b"precious recording" * 20)
        return store, store.path_of("region", KEY)

    def _quarantined(self, tmp_path):
        return os.listdir(os.path.join(str(tmp_path), "quarantine"))

    def test_bit_flip_reads_as_quarantined_miss(self, tmp_path):
        store, path = self._write_one(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(30)
            byte = handle.read(1)
            handle.seek(30)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert store.read("region", KEY) is None
        assert not os.path.exists(path)  # moved out of the object tree
        assert len(self._quarantined(tmp_path)) == 1
        stats = store.stats()
        assert stats.corrupt == 1 and stats.misses == 1 and stats.hits == 0

    def test_truncated_blob_reads_as_quarantined_miss(self, tmp_path):
        store, path = self._write_one(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        assert store.read("region", KEY) is None
        assert len(self._quarantined(tmp_path)) == 1
        assert store.stats().corrupt == 1

    def test_zero_length_blob_reads_as_quarantined_miss(self, tmp_path):
        store, path = self._write_one(tmp_path)
        with open(path, "wb"):
            pass
        assert store.read("region", KEY) is None
        assert len(self._quarantined(tmp_path)) == 1
        assert store.stats().corrupt == 1

    def test_verified_keys_skips_and_quarantines_damage(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write("bundle", "aa" + "0" * 38, b"good")
        store.write("bundle", "ab" + "0" * 38, b"doomed")
        with open(store.path_of("bundle", "ab" + "0" * 38), "wb") as handle:
            handle.write(b"garbage that is long enough to open but not verify!!")
        assert store.verified_keys("bundle") == ["aa" + "0" * 38]
        assert len(self._quarantined(tmp_path)) == 1


# --------------------------------------------------------------------------- gc


class TestGC:
    def test_gc_respects_budget_evicting_lru_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = [f"{index:02d}" + "0" * 62 for index in range(6)]
        payload = b"z" * 512
        for index, key in enumerate(keys):
            store.write("region", key, payload)
            mtime = time.time() - 1000 + index  # deterministic LRU order
            os.utime(store.path_of("region", key), (mtime, mtime))
        blob_size = os.path.getsize(store.path_of("region", keys[0]))
        report = store.gc(max_bytes=3 * blob_size)
        assert report.evicted == 3
        assert report.bytes_after <= 3 * blob_size
        # Oldest three gone, newest three kept.
        assert all(store.read("region", key) is None for key in keys[:3])
        assert all(store.read("region", key) is not None for key in keys[3:])
        assert store.stats().evictions == 3

    def test_read_refreshes_the_lru_clock(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = [f"{index:02d}" + "0" * 62 for index in range(3)]
        for index, key in enumerate(keys):
            store.write("region", key, b"z" * 256)
            mtime = time.time() - 1000 + index
            os.utime(store.path_of("region", key), (mtime, mtime))
        assert store.read("region", keys[0]) is not None  # bumps mtime to now
        blob = os.path.getsize(store.path_of("region", keys[0]))
        store.gc(max_bytes=1 * blob)
        assert store.read("region", keys[0]) is not None  # survived: recently read
        assert store.read("region", keys[1]) is None

    def test_gc_never_evicts_pinned_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        old = "aa" + "0" * 62
        store.write("region", old, b"z" * 256)
        os.utime(store.path_of("region", old), (time.time() - 1000,) * 2)
        store.write("region", "bb" + "0" * 62, b"z" * 256)
        with store.pin("region", old):
            report = store.gc(max_bytes=0)
            assert report.pinned_kept == 1
            assert store.read("region", old) is not None
        # Unpinned now: the same budget evicts it.
        store.gc(max_bytes=0)
        assert store.read("region", old) is None

    def test_write_triggers_gc_over_budget(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=1024)
        for index in range(8):
            store.write("region", f"{index:02d}" + "0" * 62, b"z" * 400)
        assert store.size_bytes() <= 1024
        assert store.stats().gc_runs >= 1

    def test_unbudgeted_gc_is_a_noop_scan(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write("region", KEY, b"payload")
        report = store.gc()
        assert report.evicted == 0 and report.examined == 1
        assert store.read("region", KEY) == b"payload"


# ------------------------------------------------------- concurrent writer safety


_WRITER_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.store import ArtifactStore
store = ArtifactStore({root!r})
payload = ({tag!r} * 64).encode()
for _ in range(150):
    store.write("region", {key!r}, payload)
"""


class TestConcurrentWriters:
    def test_same_key_multiprocess_race_has_no_torn_blobs(self, tmp_path):
        """N processes hammer one key while a reader verifies continuously.

        Every read must verify cleanly and decode to one writer's complete
        payload — atomic rename means last-write-wins, never interleaved bytes.
        """
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        tags = ["A", "B", "C"]
        children = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT.format(
                    src=src, root=str(tmp_path), tag=tag, key=KEY
                )],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
            )
            for tag in tags
        ]
        reader = ArtifactStore(tmp_path)
        complete = {(tag * 64).encode() for tag in tags}
        observed = set()
        deadline = time.monotonic() + 60.0
        while any(child.poll() is None for child in children):
            assert time.monotonic() < deadline, "writer children wedged"
            payload = reader.read("region", KEY)
            if payload is not None:
                assert payload in complete, "torn or foreign payload surfaced"
                observed.add(payload)
        for child in children:
            stderr = child.communicate()[1]
            assert child.returncode == 0, stderr.decode()
        assert reader.read("region", KEY) in complete
        assert reader.stats().corrupt == 0
        assert observed  # the reader actually raced the writers

    def test_threaded_writers_same_store_object(self, tmp_path):
        store = ArtifactStore(tmp_path)
        errors = []

        def hammer(tag):
            try:
                for _ in range(100):
                    store.write("region", KEY, tag.encode() * 32)
            except Exception as exc:  # pragma: no cover — the assertion
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in "XYZ"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.read("region", KEY) in {t.encode() * 32 for t in "XYZ"}


# ------------------------------------------------------------------ fault points


class TestStoreFaults:
    def test_read_error_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write("region", KEY, b"payload")
        plan = FaultPlan(seed=1, rules=[FaultRule(point="store.read", action="error")])
        with active(plan):
            assert store.read("region", KEY) is None
        assert store.read("region", KEY) == b"payload"  # intact afterwards

    def test_read_corruption_is_a_quarantined_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write("region", KEY, b"payload")
        plan = FaultPlan(
            seed=1, rules=[FaultRule(point="store.read", action="corrupt")]
        )
        with active(plan):
            assert store.read("region", KEY) is None
        assert store.stats().corrupt == 1

    def test_write_error_drops_the_write(self, tmp_path):
        store = ArtifactStore(tmp_path)
        plan = FaultPlan(
            seed=1, rules=[FaultRule(point="store.write", action="error")]
        )
        with active(plan):
            assert not store.write("region", KEY, b"payload")
        assert not store.contains("region", KEY)
        assert store.stats().write_errors == 1

    def test_write_corruption_is_detected_by_the_next_read(self, tmp_path):
        """The injected damage lands *after* the trailer is computed, so a
        corrupted write can never verify cleanly and return wrong bytes."""
        store = ArtifactStore(tmp_path)
        plan = FaultPlan(
            seed=1, rules=[FaultRule(point="store.write", action="corrupt")]
        )
        with active(plan):
            assert store.write("region", KEY, b"payload")
        assert store.read("region", KEY) is None
        assert store.stats().corrupt == 1


# ------------------------------------------------------------------ cache tiering


class TestCacheTiering:
    def test_artifact_codec_round_trip(self):
        artifact = RegionArtifact(KEY, _recording(), None)
        decoded = decode_artifact(KEY, encode_artifact(artifact))
        assert decoded is not None
        assert decoded.key == KEY
        assert decoded.recording.output_sigs == {"left": b"\x01\x02"}

    def test_decode_rejects_key_mismatch_and_garbage(self):
        artifact = RegionArtifact(KEY, _recording(), None)
        assert decode_artifact("b" * 64, encode_artifact(artifact)) is None
        assert decode_artifact(KEY, b"not a pickle") is None

    def test_write_behind_then_read_through_in_a_fresh_cache(self, tmp_path):
        first = ArtifactCache(store=str(tmp_path))
        first.put(RegionArtifact(KEY, _recording(), None))
        assert first.flush()
        first.close()

        second = ArtifactCache(store=str(tmp_path))
        assert KEY not in second  # memory tier is genuinely cold
        artifact = second.get(KEY)
        assert artifact is not None and artifact.key == KEY
        assert second.store_hits == 1 and second.hits == 1
        assert KEY in second  # promoted into the memory LRU
        second.get(KEY)
        assert second.hits == 2 and second.store_hits == 1  # served from memory

    def test_store_miss_counts_both_tiers(self, tmp_path):
        cache = ArtifactCache(store=str(tmp_path))
        assert cache.get("c" * 64) is None
        assert cache.misses == 1 and cache.store_misses == 1

    def test_clear_keeps_the_persistent_tier(self, tmp_path):
        cache = ArtifactCache(store=str(tmp_path))
        cache.put(RegionArtifact(KEY, _recording(), None))
        cache.flush()
        cache.clear()
        assert cache.get(KEY) is not None  # read through, again
        assert cache.store_hits == 1

    def test_undecodable_store_payload_is_deleted_and_missed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write("region", KEY, b"verifies fine, but is not an artifact")
        cache = ArtifactCache(store=store)
        assert cache.get(KEY) is None
        assert not store.contains("region", KEY)  # format drift: slot freed

    def test_cache_without_store_flushes_trivially(self):
        cache = ArtifactCache()
        assert cache.flush()
        assert cache.store is None


# ----------------------------------------------------- warm starts, all the doors


class TestWarmStartPlumbing:
    def _compile_documents(self, tmp_path, source=EXPR_SOURCE):
        with Session(backend="threads", store=str(tmp_path)) as session:
            result = session.open("exprlang", source).recompile()
            session.artifact_cache.flush()
        return result

    def test_session_warm_starts_across_lives(self, tmp_path):
        first = self._compile_documents(tmp_path)
        with Session(backend="threads", store=str(tmp_path)) as session:
            doc = session.open("exprlang", EXPR_SOURCE)
            second = doc.recompile()
            cache = session.artifact_cache
            assert cache.store_hits > 0
        assert second.value == first.value

    def test_session_open_store_overrides_session_cache(self, tmp_path):
        self._compile_documents(tmp_path)
        with Session(backend="threads") as session:  # session itself storeless
            doc = session.open("exprlang", EXPR_SOURCE, store=str(tmp_path))
            doc.recompile()
            assert doc.cache.store_hits > 0
            assert session._artifact_cache is None or (
                session._artifact_cache is not doc.cache
            )

    def test_document_rejects_cache_and_store_together(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            Document(
                "exprlang",
                EXPR_SOURCE,
                cache=ArtifactCache(),
                store=str(tmp_path),
            )

    def test_service_stats_expose_the_store_tier(self, tmp_path):
        job = CompilationJob(language="exprlang", source=EXPR_SOURCE)

        substrate = create_substrate("threads")
        substrate.start()
        try:
            service = CompilationService(substrate, store=str(tmp_path))
            service.start()
            service.submit(job).result(60)
            service._artifact_cache.flush()
            first = service.stats()
            assert first.store_writes > 0 and first.store_hits == 0
            payload = first.to_dict()
            for field in (
                "store_hits", "store_misses", "store_writes", "store_corrupt",
                "store_evictions", "store_bytes_read", "store_bytes_written",
            ):
                assert field in payload
            service.close()
        finally:
            substrate.shutdown()

        substrate = create_substrate("threads")
        substrate.start()
        try:
            service = CompilationService(substrate, store=str(tmp_path))
            service.start()
            service.submit(job).result(60)
            stats = service.stats()
            # The warm-start proof: a brand-new process-shaped service replayed
            # regions recorded by its predecessor.
            assert stats.store_hits > 0
            assert "store" in stats.summary()
            service.close()
        finally:
            substrate.shutdown()

    def test_service_rejects_store_with_borrowed_cache(self, tmp_path):
        substrate = create_substrate("threads")
        substrate.start()
        try:
            with pytest.raises(ValueError, match="sharing"):
                CompilationService(
                    substrate, artifact_cache=ArtifactCache(), store=str(tmp_path)
                )
        finally:
            substrate.shutdown()

    def test_server_restart_reports_store_hits(self, tmp_path):
        request = {"language": "exprlang", "source": EXPR_SOURCE}
        values = []
        for life in range(2):
            handle = serve_in_thread(
                ServerConfig(port=0, backend="threads", store=str(tmp_path))
            )
            try:
                conn = http.client.HTTPConnection(
                    handle.host, handle.port, timeout=30.0
                )
                conn.request(
                    "POST", "/compile", body=json.dumps(request),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = json.loads(response.read())
                assert response.status == 200
                values.append(body["value"])
                conn.request("GET", "/stats")
                stats = json.loads(conn.getresponse().read())
                if life == 1:
                    assert stats["service"]["store_hits"] > 0
                conn.close()
            finally:
                handle.stop()
        assert values[0] == values[1]


# ------------------------------------------------------------- cluster bundles


def _start_cluster(tmp_path, workers=1):
    substrate = SocketsSubstrate(
        workers=0, receive_timeout=60.0, manage_workers=False
    )
    substrate.start()
    host, port = substrate.address
    lives = []
    for index in range(workers):
        worker = ClusterWorker(
            host, port, name=f"stored-{index}", store=str(tmp_path)
        )
        worker.connect()
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        lives.append((worker, thread))
    substrate.wait_for_workers(workers, timeout=30.0)
    return substrate, lives


class TestClusterBundleStore:
    def test_bundles_resolve_from_worker_store_after_restart(self, tmp_path):
        substrate, _ = _start_cluster(tmp_path)
        try:
            first = Compiler("exprlang", machines=4, substrate=substrate).compile(
                EXPR_SOURCE
            )
            stats = substrate.cluster_stats()
            assert stats.bundles_shipped > 0 and stats.bundles_from_store == 0
        finally:
            substrate.shutdown()

        # A new fleet life on the same store: the worker advertises the bundle
        # digest at handshake and the coordinator ships a reference, not bytes.
        substrate, _ = _start_cluster(tmp_path)
        try:
            second = Compiler("exprlang", machines=4, substrate=substrate).compile(
                EXPR_SOURCE
            )
            stats = substrate.cluster_stats()
            assert stats.bundles_from_store > 0
            assert stats.bundles_shipped == 0
            assert stats.bundle_misses == 0
        finally:
            substrate.shutdown()
        assert second.value == first.value

    def test_bundle_miss_recovers_by_reshipping_bytes(self, tmp_path):
        substrate, _ = _start_cluster(tmp_path)
        try:
            first = Compiler("exprlang", machines=4, substrate=substrate).compile(
                EXPR_SOURCE
            )
        finally:
            substrate.shutdown()

        substrate, _ = _start_cluster(tmp_path)
        try:
            # Sabotage: the worker advertised its stored digests at handshake,
            # but the blobs vanish before the first job arrives (eviction race).
            saboteur = ArtifactStore(tmp_path)
            digests = list(saboteur.keys("bundle"))
            assert digests
            for digest in digests:
                saboteur.delete("bundle", digest)
            second = Compiler("exprlang", machines=4, substrate=substrate).compile(
                EXPR_SOURCE
            )
            stats = substrate.cluster_stats()
            assert stats.bundle_misses > 0      # the reference came back unmet
            assert stats.bundles_shipped > 0    # ...and real bytes re-shipped
        finally:
            substrate.shutdown()
        assert second.value == first.value
