"""T1 — fraction of attributes evaluated dynamically by the combined evaluator."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.dynamic_fraction import run_dynamic_fraction


def test_dynamic_fraction(benchmark, workload):
    result = run_once(benchmark, run_dynamic_fraction, workload)
    print()
    print(result.describe())

    # Paper: "on average less than 10 percent of the attributes are evaluated
    # dynamically"; with our grammar the fraction is well below that.
    assert result.average < 0.10
    for fraction in result.fractions.values():
        assert fraction < 0.10
