"""Figure 5 — evaluator running times versus number of machines."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figure5 import run_figure5


def test_figure5_running_times(benchmark, workload):
    result = run_once(benchmark, run_figure5, workload)
    print()
    print(result.describe())

    # Qualitative shape from the paper: the combined evaluator is consistently faster
    # than the dynamic one, reaches a speedup of roughly 4 on five machines (dynamic
    # roughly 3 over its own sequential time), and the gap narrows as machines are added.
    for machines in result.machine_counts:
        assert result.combined_times[machines] <= result.dynamic_times[machines]
    assert result.speedup("combined", 5) > 2.5
    assert result.speedup("dynamic", 5) > 2.0
    gap_at_1 = result.dynamic_times[1] / result.combined_times[1]
    gap_at_6 = result.dynamic_times[6] / result.combined_times[6]
    assert gap_at_6 < gap_at_1
