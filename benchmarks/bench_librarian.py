"""T2 — string librarian versus naive up-the-tree code propagation."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.librarian import run_librarian_comparison


def test_librarian_improvement(benchmark, workload):
    result = run_once(benchmark, run_librarian_comparison, workload, machines=5)
    print()
    print(result.describe())

    # Paper: the librarian saves about a second (~10 %) by sending each evaluator's code
    # over the network exactly once.  The shape we check: the librarian never loses, and
    # it moves strictly fewer bytes across the network.
    assert result.with_librarian <= result.without_librarian
    assert result.bytes_with < result.bytes_without
    assert result.improvement_fraction >= 0.0
