"""Ablations of the design choices called out in DESIGN.md.

* priority attributes on/off (the paper: without them "pathological situations can
  occur whereby local attributes are computed ahead of attributes that are required
  globally");
* unique-identifier base values versus a (modelled) fully sequential label counter;
* decomposition granularity (the runtime-scaled minimum split size);
* network latency/bandwidth sensitivity.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.distributed.compiler import CompilerConfiguration
from repro.runtime.network import NetworkParameters


def _time(workload, machines, **config):
    report = workload.compile_tree(machines, CompilerConfiguration(**config))
    return report


def test_priority_attributes_ablation(benchmark, workload):
    def run():
        with_priority = _time(workload, 5, evaluator="combined", use_priority=True)
        without_priority = _time(workload, 5, evaluator="combined", use_priority=False)
        return with_priority.evaluation_time, without_priority.evaluation_time

    with_time, without_time = run_once(benchmark, run)
    print(f"\npriority attributes: {with_time:.2f}s with, {without_time:.2f}s without")
    # Priority scheduling never hurts: the environment reaches remote evaluators at
    # least as early as under plain FIFO scheduling.
    assert with_time <= without_time * 1.02


def test_split_granularity_ablation(benchmark, workload):
    def run():
        results = {}
        for scale in (0.5, 1.0, 2.0):
            report = workload.compile_tree(
                5, CompilerConfiguration(evaluator="combined", split_scale=scale)
            )
            results[scale] = (report.evaluation_time, report.decomposition.region_count)
        return results

    results = run_once(benchmark, run)
    print()
    for scale, (seconds, regions) in sorted(results.items()):
        print(f"split scale {scale}: {seconds:.2f}s, {regions} regions")
    # Larger thresholds cannot produce more regions than smaller ones.
    assert results[2.0][1] <= results[0.5][1]


def test_network_sensitivity_ablation(benchmark, workload):
    def run():
        fast = NetworkParameters(bandwidth_bytes_per_second=10e6, message_latency=0.5e-3)
        slow = NetworkParameters(bandwidth_bytes_per_second=0.3e6, message_latency=10e-3)
        fast_time = workload.compile_tree(
            5, CompilerConfiguration(evaluator="combined", network=fast)
        ).evaluation_time
        slow_time = workload.compile_tree(
            5, CompilerConfiguration(evaluator="combined", network=slow)
        ).evaluation_time
        return fast_time, slow_time

    fast_time, slow_time = run_once(benchmark, run)
    print(f"\nnetwork sensitivity: fast {fast_time:.2f}s, slow {slow_time:.2f}s")
    assert fast_time < slow_time
