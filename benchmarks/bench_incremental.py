"""Edit-recompile loop benchmark: cold full builds vs incremental recompilation.

Simulates an editor session over the largest Pascal example program (the
paper-sized synthetic workload, ~1100 lines / 46 routines): open a
:class:`repro.incremental.Document` on a pooled substrate, then alternate a
keystroke-sized edit inside one region and ``doc.recompile()``.

Measured on the pooled **processes** substrate (threads where fork is
unavailable):

* **cold** — a full build with the artifact cache emptied first (every region
  shipped and evaluated);
* **warm** — ``recompile()`` after a single-region edit: the token stream is
  spliced, only the damaged subtree is re-parsed, and only the dirty regions
  (the edited region plus its region-tree ancestors) are shipped and evaluated —
  the rest replay from the content-addressed cache.

Emits ``BENCH_incremental.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_incremental.py            # full run
    PYTHONPATH=src python benchmarks/bench_incremental.py --quick    # CI smoke

``--min-speedup 3`` exits non-zero when warm p50 fails to beat cold p50 by that
factor (a local regression gate; CI records the JSON without gating — shared
runners are too noisy for wall-clock ratios).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import re
import sys
import time
from typing import Dict, List

from repro.api import Session
from repro.pascal.programs import generate_program


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = (len(ordered) - 1) * q
    lower = int(index)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = index - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def _stats(samples: List[float]) -> Dict[str, float]:
    return {
        "p50": _percentile(samples, 0.50),
        "p95": _percentile(samples, 0.95),
        "samples": len(samples),
    }


def run(args: argparse.Namespace) -> Dict:
    if args.quick:
        procedures, statements, cold_iters, warm_iters = 12, 4, 2, 4
    else:
        procedures, statements, cold_iters, warm_iters = 46, 8, 5, 12
    source = generate_program(
        procedures=procedures, statements_per_procedure=statements, seed=1987
    )
    backend = "processes" if _fork_available() else "threads"

    # The edit: alternate one numeric constant in the main program body between
    # two values — always a real change, always inside a single region.
    match = list(re.finditer(r":= (\d+);", source))[-1]
    edit_at = match.start(1)
    original = match.group(1)
    variants = ["41", "53"]

    with Session(backend=backend, machines=args.machines) as session:
        doc = session.open("pascal", source, machines=args.machines)
        doc.recompile()  # warm the worker pool, parse tables and codec caches

        colds: List[float] = []
        for _ in range(cold_iters):
            session.artifact_cache.clear()
            doc._memo.replace({})  # forget fingerprints too: a genuinely cold build
            started = time.perf_counter()
            cold_result = doc.recompile()
            colds.append(time.perf_counter() - started)
        doc.recompile()  # repopulate the cache before the warm loop

        warms: List[float] = []
        current = original
        last = None
        for index in range(warm_iters):
            replacement = variants[index % 2]
            doc.edit(edit_at, edit_at + len(current), replacement)
            current = replacement
            started = time.perf_counter()
            last = doc.recompile()
            warms.append(time.perf_counter() - started)

    cold_p50 = _percentile(colds, 0.50)
    warm_p50 = _percentile(warms, 0.50)
    speedup = cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")
    incremental = last.incremental
    print(f"substrate: {backend}, machines: {args.machines}")
    print(
        f"cold full build  p50 {cold_p50 * 1000:.1f}ms  "
        f"p95 {_percentile(colds, 0.95) * 1000:.1f}ms  ({len(colds)} samples)"
    )
    print(
        f"incremental      p50 {warm_p50 * 1000:.1f}ms  "
        f"p95 {_percentile(warms, 0.95) * 1000:.1f}ms  ({len(warms)} samples)"
    )
    print(
        f"speedup {speedup:.2f}x — {incremental.regions_evaluated}/"
        f"{incremental.regions_total} region(s) evaluated per edit "
        f"(dirty={incremental.dirty_regions}, frontend={incremental.frontend})"
    )

    return {
        "benchmark": "incremental",
        "workload": {
            "language": "pascal",
            "procedures": procedures,
            "statements_per_procedure": statements,
            "seed": 1987,
            "source_chars": len(source),
            "machines": args.machines,
            "backend": backend,
            "quick": args.quick,
        },
        "cold": _stats(colds),
        "warm": _stats(warms),
        "speedup_p50": speedup,
        "regions": {
            "total": incremental.regions_total,
            "evaluated": incremental.regions_evaluated,
            "reused": incremental.regions_reused,
            "dirty": incremental.dirty_regions,
            "validation_rounds": incremental.validation_rounds,
            "frontend": incremental.frontend,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small program, few iterations (CI smoke)")
    parser.add_argument("--machines", type=int, default=8, help="evaluator machines per compile")
    parser.add_argument("--output", default="BENCH_incremental.json", help="where to write the JSON report")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail (exit 1) if cold p50 / warm p50 falls below this factor",
    )
    args = parser.parse_args(argv)

    payload = run(args)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.min_speedup is not None and payload["speedup_p50"] < args.min_speedup:
        print(
            f"FAIL: speedup {payload['speedup_p50']:.2f}x below the "
            f"--min-speedup {args.min_speedup:g}x gate"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
