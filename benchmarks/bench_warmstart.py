"""Warm-start benchmark: what a persistent artifact store buys across restarts.

The question this answers: a compile process dies (deploy, crash, autoscaler)
and a fresh one takes its place — how fast is the *first* build of a source the
fleet has seen before?  Three scenarios over the same paper-sized Pascal
program, each timed inside its own freshly spawned Python process (the script
re-invokes itself with ``--child``, so "restart" means a real process restart,
not a cleared dict):

* **cold_store** — fresh process, *empty* store: every region is shipped and
  evaluated.  This is life without persistence.
* **warm_store** — fresh process, but mounting a store populated by an earlier
  life: region recordings read through from disk and replay; only the root
  region (never cached) evaluates.
* **warm_memory** — same process, second document on the already-warm in-memory
  cache: the ceiling the store tier is chasing.

Also verifies the store is *pure speed*: a full build with the store mounted is
byte-identical to one without, on all four substrates (simulated / threads /
processes / sockets), and the warm-store replay reproduces the cold result
exactly.

Emits ``BENCH_warmstart.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_warmstart.py            # full run
    PYTHONPATH=src python benchmarks/bench_warmstart.py --quick    # CI smoke

``--gate`` enforces the PR's acceptance ratios locally (warm-store ≥3x faster
than cold-store at p50 and within 1.5x of warm-memory); CI records the JSON
without gating — shared runners are too noisy for wall-clock ratios.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
if SRC_DIR not in sys.path:  # direct `python benchmarks/bench_warmstart.py` runs
    sys.path.insert(0, SRC_DIR)

from repro.api import Session  # noqa: E402
from repro.pascal.programs import generate_program  # noqa: E402

#: Substrates the parity leg checks for byte-identical store-on/store-off builds.
ALL_SUBSTRATES = ("simulated", "threads", "processes", "sockets")


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = (len(ordered) - 1) * q
    lower = int(index)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = index - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def _stats(samples: List[float]) -> Dict[str, float]:
    return {
        "p50": _percentile(samples, 0.50),
        "p95": _percentile(samples, 0.95),
        "samples": len(samples),
    }


def _digest(result: Any) -> str:
    """A stable fingerprint of a compile's observable outcome."""
    blob = repr((result.value, list(result.errors))).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _workload(quick: bool) -> str:
    procedures, statements = (12, 4) if quick else (46, 8)
    return generate_program(
        procedures=procedures, statements_per_procedure=statements, seed=1987
    )


# ---------------------------------------------------------------- child process


def run_child(args: argparse.Namespace) -> int:
    """One process life: build the workload, report timings as one JSON line.

    Measures two things: the first build of the measured source in this process
    (cold if the store is empty, warm-store if a predecessor populated it), and
    a second document's build on the now-warm in-memory cache (warm_memory).
    """
    source = _workload(args.quick)
    with Session(
        backend=args.backend, machines=args.machines, store=args.store or None
    ) as session:
        # Untimed pool/parse-table warmup on a trivial source, so the measured
        # build times compilation, not interpreter and worker-pool startup.
        session.open("pascal", "program w; begin x := 1 end.").recompile()

        doc = session.open("pascal", source)
        started = time.perf_counter()
        first = doc.recompile()
        first_seconds = time.perf_counter() - started

        cache = session.artifact_cache
        doc2 = session.open("pascal", source)
        started = time.perf_counter()
        second = doc2.recompile()
        memory_seconds = time.perf_counter() - started

        cache.flush()  # settle write-behind so the next life sees every blob
        payload = {
            "first_seconds": first_seconds,
            "memory_seconds": memory_seconds,
            "digest": _digest(first),
            "memory_digest": _digest(second),
            "store_hits": cache.store_hits,
            "store_misses": cache.store_misses,
        }
    print("CHILD:" + json.dumps(payload))
    return 0


def _spawn_child(
    args: argparse.Namespace, store: Optional[str], backend: str
) -> Dict[str, Any]:
    command = [
        sys.executable,
        os.path.abspath(__file__),
        "--child",
        "--backend",
        backend,
        "--machines",
        str(args.machines),
    ]
    if args.quick:
        command.append("--quick")
    if store is not None:
        command.extend(["--store", store])
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        command, capture_output=True, text=True, env=env, timeout=600
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"warm-start child failed ({completed.returncode}):\n"
            f"{completed.stdout}\n{completed.stderr}"
        )
    for line in completed.stdout.splitlines():
        if line.startswith("CHILD:"):
            return json.loads(line[len("CHILD:"):])
    raise RuntimeError(f"child produced no report:\n{completed.stdout}")


# -------------------------------------------------------------------- scenarios


def run_restart_scenarios(args: argparse.Namespace, backend: str, workdir: str) -> Dict:
    cold_lives, warm_lives = (1, 2) if args.quick else (3, 5)

    colds: List[float] = []
    memories: List[float] = []
    digests = set()
    shared_store = os.path.join(workdir, "store")
    for index in range(cold_lives):
        # Every cold life gets a store of its own (an empty one is what makes it
        # cold); the first one doubles as the seed for the warm-store lives.
        store = shared_store if index == 0 else os.path.join(workdir, f"cold{index}")
        report = _spawn_child(args, store, backend)
        if report["store_hits"]:
            raise RuntimeError("cold life reported store hits — store not empty?")
        colds.append(report["first_seconds"])
        memories.append(report["memory_seconds"])
        digests.add(report["digest"])
        digests.add(report["memory_digest"])

    warms: List[float] = []
    warm_hits = 0
    for _ in range(warm_lives):
        report = _spawn_child(args, shared_store, backend)
        if not report["store_hits"]:
            raise RuntimeError(
                "warm-store life reported zero store hits — persistence broken"
            )
        warm_hits += report["store_hits"]
        warms.append(report["first_seconds"])
        memories.append(report["memory_seconds"])
        digests.add(report["digest"])
        digests.add(report["memory_digest"])

    if len(digests) != 1:
        raise RuntimeError(
            f"results diverged across lives/tiers: {len(digests)} distinct digests"
        )

    cold_p50 = _percentile(colds, 0.50)
    warm_p50 = _percentile(warms, 0.50)
    memory_p50 = _percentile(memories, 0.50)
    return {
        "cold_store": _stats(colds),
        "warm_store": _stats(warms),
        "warm_memory": _stats(memories),
        "warm_store_hits_total": warm_hits,
        "speedup_warm_store_vs_cold": cold_p50 / warm_p50 if warm_p50 else 0.0,
        "overhead_warm_store_vs_memory": (
            warm_p50 / memory_p50 if memory_p50 else 0.0
        ),
        "result_digest": digests.pop(),
    }


def run_parity(args: argparse.Namespace, workdir: str) -> Dict:
    """Full builds must be byte-identical with the store on and off, everywhere."""
    source = _workload(args.quick)
    parity: Dict[str, Any] = {}
    digests = set()
    for backend in ALL_SUBSTRATES:
        if backend == "processes" and not _fork_available():
            parity[backend] = {"skipped": "fork unavailable"}
            continue
        pair = {}
        for label, store in (
            ("store_off", None),
            ("store_on", os.path.join(workdir, f"parity-{backend}")),
        ):
            with Session(backend=backend, machines=args.machines, store=store) as s:
                result = s.open("pascal", source).recompile()
                pair[label] = _digest(result)
        identical = pair["store_off"] == pair["store_on"]
        parity[backend] = {**pair, "identical": identical}
        digests.update(pair.values())
        if not identical:
            raise RuntimeError(f"store changed results on the {backend} substrate")
    parity["identical_across_substrates"] = len(digests) == 1
    return parity


def run(args: argparse.Namespace) -> Dict:
    backend = "processes" if _fork_available() else "threads"
    with tempfile.TemporaryDirectory(prefix="repro-warmstart-") as workdir:
        scenarios = run_restart_scenarios(args, backend, workdir)
        parity = run_parity(args, workdir)

    cold = scenarios["cold_store"]["p50"]
    warm = scenarios["warm_store"]["p50"]
    memory = scenarios["warm_memory"]["p50"]
    print(f"substrate: {backend}, machines: {args.machines}")
    print(f"cold-store  first build  p50 {cold * 1000:.1f}ms "
          f"({scenarios['cold_store']['samples']} process lives)")
    print(f"warm-store  first build  p50 {warm * 1000:.1f}ms "
          f"({scenarios['warm_store']['samples']} process lives, "
          f"{scenarios['warm_store_hits_total']} store hits)")
    print(f"warm-memory rebuild      p50 {memory * 1000:.1f}ms")
    print(f"restart speedup {scenarios['speedup_warm_store_vs_cold']:.2f}x, "
          f"store overhead vs memory "
          f"{scenarios['overhead_warm_store_vs_memory']:.2f}x")
    checked = [b for b in ALL_SUBSTRATES if "identical" in parity.get(b, {})]
    print(f"parity: store on/off byte-identical on {', '.join(checked)}")

    return {
        "benchmark": "warmstart",
        "workload": {
            "language": "pascal",
            "quick": args.quick,
            "machines": args.machines,
            "backend": backend,
            "source_chars": len(_workload(args.quick)),
        },
        **scenarios,
        "parity": parity,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small program, few process lives (CI smoke)")
    parser.add_argument("--machines", type=int, default=8,
                        help="evaluator machines per compile")
    parser.add_argument("--output", default="BENCH_warmstart.json",
                        help="where to write the JSON report")
    parser.add_argument("--gate", action="store_true",
                        help="fail unless warm-store is ≥3x cold-store and "
                             "within 1.5x of warm-memory (local runs only)")
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--backend", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--store", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return run_child(args)

    payload = run(args)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.gate:
        failures = []
        if payload["speedup_warm_store_vs_cold"] < 3.0:
            failures.append(
                f"warm-store speedup {payload['speedup_warm_store_vs_cold']:.2f}x "
                "< 3x over cold-store"
            )
        if payload["overhead_warm_store_vs_memory"] > 1.5:
            failures.append(
                f"warm-store is {payload['overhead_warm_store_vs_memory']:.2f}x "
                "warm-memory, over the 1.5x bound"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
