"""Figure 6 — behaviour (activity timeline) of the parallel combined evaluator."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figure6 import run_figure6


def test_figure6_timeline(benchmark, workload):
    result = run_once(benchmark, run_figure6, workload, machines=5)
    print()
    print(result.ascii_timeline())

    # The paper's qualitative observations: the symbol-table phase is small and largely
    # sequential, code generation dominates and runs concurrently on all machines, and
    # the librarian / result propagation happens at the end.
    assert result.phase_totals.get("code-generation", 0.0) > result.phase_totals.get(
        "symbol-table", 0.0
    )
    busy_machines = [
        machine for machine, intervals in result.timeline.items() if intervals
    ]
    assert len(busy_machines) == 5
    assert result.phase_totals.get("result-propagation", 0.0) > 0.0
