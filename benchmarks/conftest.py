"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one figure or table of the paper and prints the reproduced
rows (captured by pytest with ``-s``; always recorded in ``EXPERIMENTS.md``).  The
simulations are deterministic, so a single round per benchmark is sufficient and keeps
the whole harness fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.workload import default_workload


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def workload():
    """The paper-sized Pascal program (parsed once for the whole benchmark session)."""
    return default_workload()
