"""End-to-end hot-path benchmark: p50/p95 wall clock per substrate, per phase.

Measures the per-compile fast path the packed-codec / precompiled-tables /
poll-free-mailbox / single-pass-lexer work targets, on the Pascal workload:

* **lex** — tokenizing the source (single-pass combined-regex scanner);
* **parse** — full front end (lex + LALR parse) via the registered language;
* **ship** — the parser coordinator encoding and sending region subtrees
  (``CompilationReport.wall_ship_seconds``; packed array-of-ints codec on the
  processes substrate);
* **evaluate** — the backend run (``wall_evaluation_seconds``);
* **end_to_end** — one whole ``Compiler.compile(source)`` call.

Emits ``BENCH_hotpath.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # CI smoke

``--check-baseline benchmarks/BENCH_hotpath_baseline.json`` exits non-zero when the
processes-substrate end-to-end p50 regressed beyond the tolerance against the
committed baseline (the CI perf-smoke gate).  The tolerance factor defaults to 2.0
and is configurable per run — ``--tolerance 3.0`` or the ``BENCH_HOTPATH_TOLERANCE``
environment variable (the flag wins) — so noisy CI runners can widen the gate
without editing the workflow.  See ``benchmarks/README.md`` for the
baseline-regeneration workflow.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from typing import Dict, List

from repro.api import Session, get_language
from repro.distributed.compiler import CompilerConfiguration
from repro.pascal import generate_program
from repro.pascal.lexer import tokenize_pascal

#: Default regression gate for --check-baseline: fail when p50 exceeds baseline by
#: this factor.  Override per run with --tolerance or BENCH_HOTPATH_TOLERANCE.
REGRESSION_FACTOR = 2.0


def default_tolerance() -> float:
    """The tolerance factor from the environment, or the built-in default."""
    raw = os.environ.get("BENCH_HOTPATH_TOLERANCE")
    if not raw:
        return REGRESSION_FACTOR
    try:
        value = float(raw)
    except ValueError:
        raise SystemExit(
            f"BENCH_HOTPATH_TOLERANCE={raw!r} is not a number"
        ) from None
    if value <= 0:
        raise SystemExit(f"BENCH_HOTPATH_TOLERANCE={raw!r} must be positive")
    return value


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = (len(ordered) - 1) * q
    lower = int(index)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = index - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def _stats(samples: List[float]) -> Dict[str, float]:
    return {
        "p50": _percentile(samples, 0.50),
        "p95": _percentile(samples, 0.95),
        "samples": len(samples),
    }


def bench_substrate(
    backend: str,
    source: str,
    machines: int,
    iterations: int,
    compiled_plans: bool = True,
) -> Dict[str, Dict[str, float]]:
    """One substrate's numbers: end-to-end plus the per-phase decomposition."""
    phases: Dict[str, List[float]] = {
        "lex": [],
        "parse": [],
        "ship": [],
        "evaluate": [],
        "end_to_end": [],
    }
    with Session(backend=backend, machines=machines) as session:
        if compiled_plans:
            compiler = session.compiler("pascal")
        else:
            compiler = session.compiler(
                "pascal",
                configuration=CompilerConfiguration(use_compiled_plans=False),
            )
        compiler.compile(source)  # warm the pool, the parse tables and the caches
        for _ in range(iterations):
            started = time.perf_counter()
            tokenize_pascal(source)
            phases["lex"].append(time.perf_counter() - started)

            started = time.perf_counter()
            result = compiler.compile(source)
            phases["end_to_end"].append(time.perf_counter() - started)
            phases["parse"].append(result.wall_parse_seconds)
            phases["ship"].append(result.report.wall_ship_seconds)
            phases["evaluate"].append(result.report.wall_evaluation_seconds)
    return {phase: _stats(samples) for phase, samples in phases.items()}


def run(args: argparse.Namespace) -> Dict:
    # Quick runs keep 9 iterations: with 3 samples the p50 is the middle of three
    # noisy runs and the --check-baseline gate flapped; 9 samples make the median
    # stable enough for a 2x tolerance (see benchmarks/README.md).
    if args.quick:
        procedures, statements, iterations = 10, 4, 9
    else:
        procedures, statements, iterations = 24, 6, 10
    compiled_plans = args.compiled_plans != "off"
    source = generate_program(
        procedures=procedures, statements_per_procedure=statements, seed=7
    )
    get_language("pascal")  # fail fast if the registry is broken

    if args.substrate:
        substrates = list(dict.fromkeys(args.substrate))
        if not _fork_available():
            unavailable = [s for s in substrates if s in ("processes", "sockets")]
            if unavailable:
                raise SystemExit(
                    f"substrate(s) {unavailable} need the 'fork' start method, "
                    "which this platform lacks"
                )
    else:
        substrates = ["simulated", "threads"]
        if _fork_available():
            substrates.append("processes")

    results: Dict[str, Dict] = {}
    for backend in substrates:
        print(
            f"benchmarking {backend} substrate ({iterations} iterations, "
            f"compiled plans {'on' if compiled_plans else 'off'})..."
        )
        results[backend] = bench_substrate(
            backend, source, args.machines, iterations, compiled_plans=compiled_plans
        )
        end = results[backend]["end_to_end"]
        print(f"  end-to-end p50 {end['p50'] * 1000:.1f}ms  p95 {end['p95'] * 1000:.1f}ms")

    return {
        "benchmark": "hotpath",
        "workload": {
            "language": "pascal",
            "procedures": procedures,
            "statements_per_procedure": statements,
            "seed": 7,
            "source_chars": len(source),
            "machines": args.machines,
            "iterations": iterations,
            "quick": args.quick,
            "compiled_plans": compiled_plans,
        },
        "substrates": results,
    }


def check_baseline(payload: Dict, baseline_path: str, tolerance: float) -> int:
    """Compare the processes-substrate end-to-end p50 against the committed baseline."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    shape = (
        "procedures",
        "statements_per_procedure",
        "machines",
        "quick",
        "compiled_plans",
    )
    current_shape = tuple(payload["workload"].get(k) for k in shape)
    baseline_shape = tuple(baseline["workload"].get(k) for k in shape)
    if current_shape != baseline_shape:
        print(
            f"baseline check skipped: workload shape {current_shape} does not match "
            f"baseline {baseline_shape}"
        )
        return 0
    current = payload["substrates"].get("processes")
    reference = baseline["substrates"].get("processes")
    if current is None or reference is None:
        print("baseline check skipped: processes substrate unavailable")
        return 0
    current_p50 = current["end_to_end"]["p50"]
    reference_p50 = reference["end_to_end"]["p50"]
    limit = reference_p50 * tolerance
    verdict = "OK" if current_p50 <= limit else "REGRESSION"
    print(
        f"baseline check [{verdict}]: processes end-to-end p50 {current_p50 * 1000:.1f}ms "
        f"vs baseline {reference_p50 * 1000:.1f}ms "
        f"(limit {limit * 1000:.1f}ms, tolerance {tolerance:g}x)"
    )
    return 0 if current_p50 <= limit else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small program, few iterations (CI smoke)")
    parser.add_argument("--machines", type=int, default=4, help="evaluator machines per compile")
    parser.add_argument(
        "--substrate",
        action="append",
        choices=["simulated", "threads", "processes", "sockets"],
        default=None,
        help=(
            "benchmark only these substrates (repeatable; includes 'sockets' so the "
            "ship-vs-evaluate split is comparable across all four); default: "
            "simulated, threads, and processes where fork is available"
        ),
    )
    parser.add_argument(
        "--compiled-plans",
        choices=["on", "off"],
        default="on",
        help=(
            "evaluate through plan-compiled closures (default) or the table-driven "
            "parity path (CompilerConfiguration(use_compiled_plans=False))"
        ),
    )
    parser.add_argument("--output", default="BENCH_hotpath.json", help="where to write the JSON report")
    parser.add_argument(
        "--check-baseline",
        metavar="PATH",
        help="fail (exit 1) if processes p50 regressed beyond the tolerance over this baseline JSON",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FACTOR",
        help=(
            "regression tolerance factor for --check-baseline "
            f"(default {REGRESSION_FACTOR:g}, or BENCH_HOTPATH_TOLERANCE)"
        ),
    )
    args = parser.parse_args(argv)
    tolerance = args.tolerance if args.tolerance is not None else default_tolerance()
    if tolerance <= 0:
        parser.error("--tolerance must be positive")

    payload = run(args)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.check_baseline:
        return check_baseline(payload, args.check_baseline, tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
