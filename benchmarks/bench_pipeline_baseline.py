"""T4 — pipelined-compiler baseline (related work): speedup limited to about 2."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.pipeline_baseline import run_pipeline_baseline


def test_pipeline_baseline(benchmark, workload):
    result = run_once(benchmark, run_pipeline_baseline, workload)
    print()
    print(result.describe())

    # Paper: pipelining the compiler phases gives a speedup of roughly 2, far below the
    # parallel attribute-grammar evaluator on the same number of machines.
    assert 1.2 < result.speedup < 3.5
    assert result.attribute_grammar_speedup > result.speedup
