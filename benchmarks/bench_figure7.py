"""Figure 7 — source program decomposition into regions a, b, c, ..."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figure7 import run_figure7


def test_figure7_decomposition(benchmark, workload):
    result = run_once(benchmark, run_figure7, workload, machines=5)
    print()
    print(result.describe())

    # Five machines should yield five regions of roughly equal size (the paper explains
    # the good five-machine performance by this balance).
    assert result.plan.region_count == 5
    assert result.plan.balance() < 1.6
    labels = [region.label for region in result.plan.regions]
    assert labels == ["a", "b", "c", "d", "e"]
    # Splits only happen at the grammar's declared split nonterminals.
    for region in result.plan.regions[1:]:
        assert region.root.symbol.name in {
            "statement", "statement_list", "proc_decl", "proc_decls"
        }
