"""Sustained-throughput rows: persistent worker pools vs per-compilation backends.

Every other benchmark measures one compilation; these rows measure *compiles per
second* over a stream of jobs — the service-layer question.  The comparison that
matters (and that the acceptance criteria pin): the pooled ``threads`` substrate must
sustain measurably more compiles/sec than creating a fresh backend per compilation on
the same workload, because the pool pays thread spawn/join once instead of per job.
On ``processes`` the gap is dramatic (one fork + one grammar shipment per worker,
amortised over the whole stream, instead of several forks per compile).

Emit machine-readable JSON with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py \
        --benchmark-json=service.json
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.backends import ProcessesSubstrate, ThreadsSubstrate
from repro.distributed.compiler import ParallelCompiler
from repro.exprlang.evaluator import random_expression_source
from repro.exprlang.frontend import parse_expression
from repro.exprlang.grammar import expression_grammar
from repro.service import CompilationJob, CompilationService

MACHINES = 8
JOBS = 32
PROCESS_JOBS = 6  # per-compilation forking is slow; a short stream shows the gap


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def expr_setup():
    """Many small splittable trees: per-compilation spawn cost dominates compute."""
    grammar = expression_grammar(min_split_size=8)
    compiler = ParallelCompiler(grammar)
    trees = [
        parse_expression(random_expression_source(16, seed=seed, nesting=5), grammar)
        for seed in range(JOBS)
    ]
    return compiler, trees


def _ephemeral_rate(compiler, trees, backend: str) -> float:
    started = time.perf_counter()
    for tree in trees:
        compiler.compile_tree(tree, MACHINES, backend=backend)
    return len(trees) / (time.perf_counter() - started)


def _pooled_rate(compiler, trees, substrate) -> float:
    compiler.compile_tree(trees[0], MACHINES, substrate=substrate)  # warm the pool
    started = time.perf_counter()
    for tree in trees:
        compiler.compile_tree(tree, MACHINES, substrate=substrate)
    return len(trees) / (time.perf_counter() - started)


def test_ephemeral_threads_throughput(benchmark, expr_setup):
    """Baseline: a fresh threads backend (spawn + join every thread) per compile."""
    compiler, trees = expr_setup
    rate = benchmark.pedantic(
        _ephemeral_rate, args=(compiler, trees, "threads"), rounds=1, iterations=1
    )
    assert rate > 0


def test_pooled_threads_throughput(benchmark, expr_setup):
    """The same stream on one persistent thread pool."""
    compiler, trees = expr_setup
    with ThreadsSubstrate() as pool:
        rate = benchmark.pedantic(
            _pooled_rate, args=(compiler, trees, pool), rounds=1, iterations=1
        )
    assert rate > 0


def test_service_concurrent_throughput(benchmark, expr_setup):
    """The stream through CompilationService with several jobs in flight."""
    compiler, trees = expr_setup

    def serve():
        with CompilationService("threads", max_in_flight=4) as service:
            jobs = [CompilationJob(compiler, tree=tree, machines=MACHINES) for tree in trees]
            started = time.perf_counter()
            reports = service.compile_many(jobs)
            rate = len(reports) / (time.perf_counter() - started)
        return rate

    rate = benchmark.pedantic(serve, rounds=1, iterations=1)
    assert rate > 0


@pytest.mark.skipif(not _fork_available(), reason="needs the fork start method")
def test_pooled_processes_throughput(benchmark, expr_setup):
    """Long-lived forked workers vs several forks per compilation."""
    compiler, trees = expr_setup
    stream = trees[:PROCESS_JOBS]

    def sweep():
        ephemeral = _ephemeral_rate(compiler, stream, "processes")
        with ProcessesSubstrate() as pool:
            pooled = _pooled_rate(compiler, stream, pool)
        return ephemeral, pooled

    ephemeral, pooled = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Fork + grammar shipping amortised across the stream: the pool must win big.
    assert pooled > ephemeral


def test_throughput_comparison_table(benchmark, expr_setup, capsys):
    """The acceptance row: pooled threads > per-compilation backend creation."""
    compiler, trees = expr_setup

    def sweep():
        rows = {}
        # Interleave two measurements of each arm and keep the best: machine noise on
        # a shared runner is one-sided (slowdowns), so best-of-2 compares the arms at
        # their respective steady states.
        ephemeral, pooled = [], []
        for _ in range(2):
            ephemeral.append(_ephemeral_rate(compiler, trees, "threads"))
            with ThreadsSubstrate() as pool:
                pooled.append(_pooled_rate(compiler, trees, pool))
        rows["ephemeral threads"] = max(ephemeral)
        rows["pooled threads"] = max(pooled)
        with CompilationService("threads", max_in_flight=4) as service:
            jobs = [CompilationJob(compiler, tree=tree, machines=MACHINES) for tree in trees]
            started = time.perf_counter()
            service.compile_many(jobs)
            rows["service (4 in flight)"] = len(jobs) / (time.perf_counter() - started)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"service throughput, {JOBS} expression compiles on {MACHINES} machines:")
        for name, rate in rows.items():
            print(f"  {name:<22} {rate:8.1f} compiles/s")
        speedup = rows["pooled threads"] / rows["ephemeral threads"]
        print(f"  pooled/ephemeral speedup: {speedup:.2f}x")
    assert rows["pooled threads"] > rows["ephemeral threads"]
