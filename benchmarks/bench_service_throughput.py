"""Sustained-throughput rows: persistent worker pools vs per-compilation backends.

Every other benchmark measures one compilation; these rows measure *compiles per
second* over a stream of jobs — the service-layer question.  The comparison that
matters (and that the acceptance criteria pin): the pooled ``threads`` substrate must
sustain measurably more compiles/sec than creating a fresh backend per compilation on
the same workload, because the pool pays thread spawn/join once instead of per job.
On ``processes`` the gap is dramatic (one fork + one grammar shipment per worker,
amortised over the whole stream, instead of several forks per compile).

Emit machine-readable JSON with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py \
        --benchmark-json=service.json
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.backends import ProcessesSubstrate, ThreadsSubstrate
from repro.distributed.compiler import ParallelCompiler
from repro.exprlang.evaluator import random_expression_source
from repro.exprlang.frontend import parse_expression
from repro.exprlang.grammar import expression_grammar
from repro.pascal import generate_program
from repro.pascal.grammar import pascal_grammar
from repro.service import CompilationJob, CompilationService

MACHINES = 8
JOBS = 32
PROCESS_JOBS = 6  # per-compilation forking is slow; a short stream shows the gap
MIXED_MACHINES = 4


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def expr_setup():
    """Many small splittable trees: per-compilation spawn cost dominates compute."""
    grammar = expression_grammar(min_split_size=8)
    compiler = ParallelCompiler(grammar)
    trees = [
        parse_expression(random_expression_source(16, seed=seed, nesting=5), grammar)
        for seed in range(JOBS)
    ]
    return compiler, trees


def _ephemeral_rate(compiler, trees, backend: str) -> float:
    started = time.perf_counter()
    for tree in trees:
        compiler.compile_tree(tree, MACHINES, backend=backend)
    return len(trees) / (time.perf_counter() - started)


def _pooled_rate(compiler, trees, substrate) -> float:
    compiler.compile_tree(trees[0], MACHINES, substrate=substrate)  # warm the pool
    started = time.perf_counter()
    for tree in trees:
        compiler.compile_tree(tree, MACHINES, substrate=substrate)
    return len(trees) / (time.perf_counter() - started)


def test_ephemeral_threads_throughput(benchmark, expr_setup):
    """Baseline: a fresh threads backend (spawn + join every thread) per compile."""
    compiler, trees = expr_setup
    rate = benchmark.pedantic(
        _ephemeral_rate, args=(compiler, trees, "threads"), rounds=1, iterations=1
    )
    assert rate > 0


def test_pooled_threads_throughput(benchmark, expr_setup):
    """The same stream on one persistent thread pool."""
    compiler, trees = expr_setup
    with ThreadsSubstrate() as pool:
        rate = benchmark.pedantic(
            _pooled_rate, args=(compiler, trees, pool), rounds=1, iterations=1
        )
    assert rate > 0


def test_service_concurrent_throughput(benchmark, expr_setup):
    """The stream through CompilationService with several jobs in flight."""
    compiler, trees = expr_setup

    def serve():
        with CompilationService("threads", max_in_flight=4) as service:
            jobs = [CompilationJob(compiler, tree=tree, machines=MACHINES) for tree in trees]
            started = time.perf_counter()
            reports = service.compile_many(jobs)
            rate = len(reports) / (time.perf_counter() - started)
        return rate

    rate = benchmark.pedantic(serve, rounds=1, iterations=1)
    assert rate > 0


@pytest.mark.skipif(not _fork_available(), reason="needs the fork start method")
def test_pooled_processes_throughput(benchmark, expr_setup):
    """Long-lived forked workers vs several forks per compilation."""
    compiler, trees = expr_setup
    stream = trees[:PROCESS_JOBS]

    def sweep():
        ephemeral = _ephemeral_rate(compiler, stream, "processes")
        with ProcessesSubstrate() as pool:
            pooled = _pooled_rate(compiler, stream, pool)
        return ephemeral, pooled

    ephemeral, pooled = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Fork + grammar shipping amortised across the stream: the pool must win big.
    assert pooled > ephemeral


@pytest.mark.skipif(not _fork_available(), reason="needs the fork start method")
def test_mixed_language_bundle_cache(benchmark, capsys):
    """Name-keyed bundles vs per-call-site engines on a mixed-language stream.

    Before the language registry, every call site built its own
    :class:`ParallelCompiler` — re-running the grammar analyses and, on the pooled
    processes substrate, re-pickling and re-shipping a fresh grammar+plan bundle to
    the workers (the worker cache dedups by object identity, which a fresh plan
    defeats).  Registry jobs (``CompilationJob(language=..., source=...)``) share
    one name-keyed engine per language instead: the analyses run once per process
    and each language's bundle crosses to each pooled worker once ever.  The same
    mixed Pascal + exprlang stream runs through one service either way; the
    registry arm must win, and the substrate's shared-object cache must show
    exactly one named entry per language against the per-call arm's pile of
    identity-keyed entries.
    """
    from repro.api.language import get_language

    expr_sources = [
        random_expression_source(16, seed=seed, nesting=5) for seed in range(8)
    ]
    pascal_sources = [
        generate_program(procedures=2, statements_per_procedure=2, seed=seed)
        for seed in range(3)
    ]
    parse_pascal = get_language("pascal").parse

    def percall_jobs():
        # One fresh engine per job: grammar analyses + bundle pickling per call site.
        jobs = [
            CompilationJob(
                ParallelCompiler(expression_grammar()),
                source=source,
                parse=parse_expression,
                machines=MIXED_MACHINES,
            )
            for source in expr_sources
        ]
        jobs += [
            CompilationJob(
                ParallelCompiler(pascal_grammar()),
                source=source,
                parse=parse_pascal,
                machines=MIXED_MACHINES,
            )
            for source in pascal_sources
        ]
        return jobs

    def registry_jobs():
        jobs = [
            CompilationJob(language="exprlang", source=source, machines=MIXED_MACHINES)
            for source in expr_sources
        ]
        jobs += [
            CompilationJob(language="pascal", source=source, machines=MIXED_MACHINES)
            for source in pascal_sources
        ]
        return jobs

    def run_stream(pool, make_jobs) -> float:
        with CompilationService(pool, max_in_flight=2) as service:
            service.compile_many(make_jobs()[:2])  # warm: fork workers
            # Job construction is inside the timed window: building the engine
            # (grammar analyses included) is precisely the per-call-site cost the
            # registry amortises away.
            started = time.perf_counter()
            jobs = make_jobs()
            service.compile_many(jobs)
            return len(jobs) / (time.perf_counter() - started)

    def sweep():
        with ProcessesSubstrate() as pool:
            percall = run_stream(pool, percall_jobs)
            percall_entries = len(pool._shared_ids)
        with ProcessesSubstrate() as pool:
            named = run_stream(pool, registry_jobs)
            named_entries = [
                ident for ident in pool._shared_ids if ident and ident[0] == "named"
            ]
            assert len(named_entries) == 2  # one bundle per language, ever
            assert len(pool._shared_ids) == 2
        # The per-call arm registered a fresh bundle per engine (plus warmup).
        assert percall_entries > len(named_entries)
        return percall, named

    percall, named = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            f"mixed Pascal+exprlang stream, {len(expr_sources) + len(pascal_sources)} "
            f"jobs on {MIXED_MACHINES} machines (processes substrate):"
        )
        print(f"  per-call-site engines   {percall:8.2f} compiles/s")
        print(f"  registry (name-keyed)   {named:8.2f} compiles/s")
        print(f"  registry/per-call speedup: {named / percall:.2f}x")
    assert named > percall


def test_throughput_comparison_table(benchmark, expr_setup, capsys):
    """The acceptance row: pooled threads > per-compilation backend creation."""
    compiler, trees = expr_setup

    def sweep():
        rows = {}
        # Interleave two measurements of each arm and keep the best: machine noise on
        # a shared runner is one-sided (slowdowns), so best-of-2 compares the arms at
        # their respective steady states.
        ephemeral, pooled = [], []
        for _ in range(2):
            ephemeral.append(_ephemeral_rate(compiler, trees, "threads"))
            with ThreadsSubstrate() as pool:
                pooled.append(_pooled_rate(compiler, trees, pool))
        rows["ephemeral threads"] = max(ephemeral)
        rows["pooled threads"] = max(pooled)
        with CompilationService("threads", max_in_flight=4) as service:
            jobs = [CompilationJob(compiler, tree=tree, machines=MACHINES) for tree in trees]
            started = time.perf_counter()
            service.compile_many(jobs)
            rows["service (4 in flight)"] = len(jobs) / (time.perf_counter() - started)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"service throughput, {JOBS} expression compiles on {MACHINES} machines:")
        for name, rate in rows.items():
            print(f"  {name:<22} {rate:8.1f} compiles/s")
        speedup = rows["pooled threads"] / rows["ephemeral threads"]
        print(f"  pooled/ephemeral speedup: {speedup:.2f}x")
    assert rows["pooled threads"] > rows["ephemeral threads"]
