"""Wall-clock comparison of the execution backends on the paper workload.

Unlike every other benchmark in this harness (which reports *simulated* seconds),
these rows measure real wall-clock time: the same ~1100-line Pascal program compiled
sequentially in-process, on the threads backend and on the processes backend.  Emit
machine-readable JSON with::

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py \
        --benchmark-json=backends.json

Expectations to sanity-check against, not golden numbers: the threads backend adds
queue/thread overhead but no parallel speedup for pure-Python rule evaluation (the
GIL), while the processes backend pays fork + pickle costs that only amortise on large
trees.  The point of the rows is to make those costs visible and machine-trackable.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.distributed.compiler import CompilerConfiguration, ParallelCompiler

MACHINES = 4


def _workers_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def parallel_compiler(workload):
    return ParallelCompiler(
        workload.compiler.grammar,
        CompilerConfiguration(evaluator="combined"),
        plan=workload.compiler.plan,
    )


def test_backend_sequential(benchmark, workload):
    """Baseline: one in-process evaluator over the whole tree (threads, 1 region)."""
    report = benchmark(
        lambda: workload.compile_tree(1, backend="threads")
    )
    assert report.decomposition.region_count == 1
    assert report.wall_evaluation_seconds > 0


def test_backend_threads(benchmark, workload, parallel_compiler):
    report = benchmark(
        lambda: parallel_compiler.compile_tree(workload.tree, MACHINES, backend="threads")
    )
    assert report.worker_count == report.decomposition.region_count >= MACHINES
    assert report.code_text("code")


@pytest.mark.skipif(not _workers_available(), reason="needs the fork start method")
def test_backend_processes(benchmark, workload, parallel_compiler):
    report = benchmark(
        lambda: parallel_compiler.compile_tree(workload.tree, MACHINES, backend="processes")
    )
    assert report.worker_count >= MACHINES
    assert report.code_text("code")


def test_backend_wall_clock_table(benchmark, workload, parallel_compiler, capsys):
    """One comparative table of wall-clock times (printed with ``-s``)."""

    def sweep():
        rows = {}
        rows["sequential"] = workload.compile_tree(1, backend="threads")
        rows["threads"] = parallel_compiler.compile_tree(
            workload.tree, MACHINES, backend="threads"
        )
        if _workers_available():
            rows["processes"] = parallel_compiler.compile_tree(
                workload.tree, MACHINES, backend="processes"
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"backend wall-clock, {workload.source_lines} source lines, {MACHINES} machines:")
        for name, report in rows.items():
            print(
                f"  {name:<10} workers={report.worker_count:<2} "
                f"evaluation={report.evaluation_time:.3f}s "
                f"total_wall={report.wall_time_seconds:.3f}s"
            )
    # Same decomposition => byte-identical code across real backends; the 1-region
    # sequential run draws unique labels from a different region base, so only the
    # line structure is comparable (exactly as the paper's design implies).
    reference = rows["threads"].code_text("code")
    if "processes" in rows:
        assert rows["processes"].code_text("code") == reference
    assert rows["sequential"].code_text("code").count("\n") == reference.count("\n")
