"""Load-test the HTTP compile server: thousands of editing sessions on loopback.

Launches ``python -m repro.server`` as a subprocess, then drives it with an
asyncio client fleet over keep-alive connections, in two phases:

* **coalesce burst** — hundreds of *identical* Pascal one-shot compiles arrive
  at once; the server must run exactly **one** underlying compilation and fan
  the result out (``jobs_coalesced >= burst - 1``);
* **session storm** — N logical editing sessions (default 10,000) multiplexed
  over a bounded connection pool: open a document, recompile cold, splice an
  edit, recompile warm, close.  A fraction of sessions *abandon* their
  documents — vanished editors — so the bounded document store fills, overload
  produces honest ``429`` + ``Retry-After`` responses (``jobs_rejected > 0``),
  and the idle sweeper reclaims the slots.

Throughout, the server's RSS is sampled from ``/proc/<pid>/status``: admission
control plus the document bound is what keeps memory flat while the request
count grows without bound.

Emits ``BENCH_load.json`` with p50/p99 latency per operation, sustained
throughput, coalesce/reject rates and peak RSS.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_service_load.py           # full storm
    PYTHONPATH=src python benchmarks/bench_service_load.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_SOURCE = "let x = 3 in 1 + 2 * x ni"
DOC_EDIT_AT = DOC_SOURCE.index("3")

ABANDON_EVERY = 5  # one session in five walks away without closing its document


# ------------------------------------------------------------- server subprocess


class ServerProcess:
    """A ``python -m repro.server`` child with RSS sampling."""

    def __init__(self, extra_args: List[str]):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.server", "--port", "0"] + extra_args,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline()
        match = re.search(r"listening on http://([^:]+):(\d+)", line)
        if not match:
            self.proc.kill()
            raise RuntimeError(f"server failed to start: {line!r}")
        self.host, self.port = match.group(1), int(match.group(2))
        self.rss_peak_bytes = 0
        self._stop_sampling = threading.Event()
        self._sampler = threading.Thread(target=self._sample_rss, daemon=True)
        self._sampler.start()

    def _sample_rss(self) -> None:
        path = f"/proc/{self.proc.pid}/status"
        while not self._stop_sampling.wait(0.2):
            try:
                with open(path) as handle:
                    for line in handle:
                        if line.startswith("VmRSS:"):
                            kib = int(line.split()[1])
                            self.rss_peak_bytes = max(
                                self.rss_peak_bytes, kib * 1024
                            )
                            break
            except OSError:  # platform without /proc, or the child exited
                return

    def shutdown(self) -> int:
        """SIGTERM (graceful drain), reap, and return the exit code."""
        self._stop_sampling.set()
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
        return self.proc.returncode


# ------------------------------------------------------------------- HTTP client


class Connection:
    """One keep-alive HTTP/1.1 connection, asyncio-native."""

    def __init__(self, host: str, port: int):
        self.host, self.port = host, port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(self.host, self.port)

    async def request(
        self, method: str, path: str, payload: Any = None
    ) -> Tuple[int, Any, Dict[str, str], bytes]:
        assert self.reader is not None and self.writer is not None
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        self.writer.write(head + body)
        await self.writer.drain()
        status_line = await self.reader.readline()
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self.reader.readexactly(length) if length else b""
        return status, (json.loads(raw) if raw else None), headers, raw

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()


def percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def latency_summary(samples: List[float]) -> Dict[str, float]:
    return {
        "count": len(samples),
        "p50_ms": round(percentile(samples, 0.50) * 1000, 3),
        "p99_ms": round(percentile(samples, 0.99) * 1000, 3),
    }


# ------------------------------------------------------------ phase A: coalescing


async def run_coalesce_burst(host: str, port: int, burst: int) -> Dict[str, Any]:
    from repro.pascal.programs import generate_program

    source = generate_program(procedures=4, statements_per_procedure=3, seed=3)
    payload = {"language": "pascal", "source": source, "machines": 4}

    probe = Connection(host, port)
    await probe.connect()
    before = (await probe.request("GET", "/stats"))[1]

    async def submit() -> Tuple[int, bytes]:
        conn = Connection(host, port)
        await conn.connect()
        try:
            status, _, _, raw = await conn.request("POST", "/compile", payload)
            return status, raw
        finally:
            conn.close()

    started = time.perf_counter()
    outcomes = await asyncio.gather(*(submit() for _ in range(burst)))
    wall = time.perf_counter() - started
    after = (await probe.request("GET", "/stats"))[1]
    probe.close()

    statuses = [status for status, _ in outcomes]
    distinct = len({raw for _, raw in outcomes})
    compiles = (
        after["service"]["jobs_completed"] - before["service"]["jobs_completed"]
    )
    coalesced = (
        after["service"]["jobs_coalesced"] - before["service"]["jobs_coalesced"]
    )
    result = {
        "burst": burst,
        "ok_responses": statuses.count(200),
        "underlying_compiles": compiles,
        "coalesced": coalesced,
        "distinct_bodies": distinct,
        "wall_seconds": round(wall, 3),
    }
    assert statuses.count(200) == burst, f"burst statuses: {set(statuses)}"
    assert compiles == 1, f"{compiles} underlying compiles for one identity"
    assert coalesced >= burst - 1, f"only {coalesced} coalesced of {burst}"
    assert distinct == 1, "coalesced responses were not byte-identical"
    return result


# ---------------------------------------------------------- phase B: session storm


async def run_session_storm(
    host: str, port: int, sessions: int, connections: int
) -> Dict[str, Any]:
    queue: "asyncio.Queue[int]" = asyncio.Queue()
    for index in range(sessions):
        queue.put_nowait(index)

    latencies: Dict[str, List[float]] = {
        "open": [], "recompile_cold": [], "recompile_warm": [],
        "edit": [], "close": [],
    }
    counts = {"sessions_completed": 0, "sessions_abandoned": 0,
              "open_rejected": 0, "recompile_rejected": 0, "retries": 0}

    async def timed(conn: Connection, op: str, method: str, path: str,
                    payload: Any = None) -> Tuple[int, Any, Dict[str, str]]:
        started = time.perf_counter()
        status, body, headers, _ = await conn.request(method, path, payload)
        if status == 200 or status == 201:
            latencies[op].append(time.perf_counter() - started)
        return status, body, headers

    async def one_session(conn: Connection, index: int) -> None:
        tenant = f"editor-{index % 64}"
        status, body, headers = await timed(
            conn, "open", "POST", "/documents",
            {"language": "exprlang", "source": DOC_SOURCE, "tenant": tenant},
        )
        if status == 429:
            counts["open_rejected"] += 1
            # Honor Retry-After once; a second refusal abandons the session.
            await asyncio.sleep(min(float(headers.get("retry-after", "1")), 2.0))
            counts["retries"] += 1
            status, body, headers = await timed(
                conn, "open", "POST", "/documents",
                {"language": "exprlang", "source": DOC_SOURCE, "tenant": tenant},
            )
            if status == 429:
                counts["open_rejected"] += 1
                return
        assert status == 201, (status, body)
        sid = body["document"]

        async def recompile(op: str) -> bool:
            status, body, headers = await timed(
                conn, op, "POST", f"/documents/{sid}/recompile"
            )
            if status == 429:
                counts["recompile_rejected"] += 1
                await asyncio.sleep(min(float(headers.get("retry-after", "1")), 2.0))
                counts["retries"] += 1
                status, body, headers = await timed(
                    conn, op, "POST", f"/documents/{sid}/recompile"
                )
                if status == 429:
                    counts["recompile_rejected"] += 1
                    return False
            if status == 404:  # evicted mid-session under heavy churn
                return False
            assert status == 200, (status, body)
            return True

        if not await recompile("recompile_cold"):
            return
        digit = str((index % 7) + 1)
        status, body, _ = await timed(
            conn, "edit", "POST", f"/documents/{sid}/edit",
            {"edits": [[DOC_EDIT_AT, DOC_EDIT_AT + 1, digit]]},
        )
        if status == 404:
            return
        assert status == 200, (status, body)
        if not await recompile("recompile_warm"):
            return
        if index % ABANDON_EVERY == 0:
            # A vanished editor: the document stays open until the idle
            # sweeper reclaims it.  This is what fills the store under load.
            counts["sessions_abandoned"] += 1
            return
        status, body, _ = await timed(conn, "close", "DELETE", f"/documents/{sid}")
        if status == 200:
            counts["sessions_completed"] += 1

    async def worker() -> None:
        conn = Connection(host, port)
        await conn.connect()
        try:
            while True:
                try:
                    index = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                await one_session(conn, index)
        finally:
            conn.close()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(connections)))
    wall = time.perf_counter() - started

    probe = Connection(host, port)
    await probe.connect()
    stats = (await probe.request("GET", "/stats"))[1]
    probe.close()

    total_ops = sum(len(samples) for samples in latencies.values())
    return {
        "sessions": sessions,
        "connections": connections,
        "wall_seconds": round(wall, 3),
        "throughput_ops_per_s": round(total_ops / wall, 1) if wall else 0.0,
        "latency": {op: latency_summary(samples)
                    for op, samples in latencies.items()},
        "outcomes": counts,
        "server_stats": {
            "jobs_rejected": stats["service"]["jobs_rejected"],
            "jobs_queued": stats["service"]["jobs_queued"],
            "admission": stats["admission"],
            "documents": stats["documents"],
        },
    }


# ------------------------------------------------------------------------- main


def run(args: argparse.Namespace) -> Dict[str, Any]:
    server = ServerProcess([
        "--backend", "threads",
        "--max-in-flight", str(args.max_in_flight),
        "--max-pending", str(args.max_pending),
        "--quota-rate", "5000",
        "--quota-burst", "10000",
        "--max-documents", str(args.max_documents),
        "--idle-ttl", str(args.idle_ttl),
    ])
    try:
        burst = asyncio.run(
            run_coalesce_burst(server.host, server.port, args.burst)
        )
        print(
            f"coalesce burst: {burst['burst']} identical submissions -> "
            f"{burst['underlying_compiles']} compile, "
            f"{burst['coalesced']} coalesced, "
            f"{burst['distinct_bodies']} distinct body"
        )
        storm = asyncio.run(
            run_session_storm(
                server.host, server.port, args.sessions, args.connections
            )
        )
        rejected = storm["server_stats"]["jobs_rejected"]
        print(
            f"session storm: {storm['sessions']} sessions over "
            f"{storm['connections']} connections in {storm['wall_seconds']}s "
            f"({storm['throughput_ops_per_s']} ops/s, "
            f"{storm['outcomes']['sessions_completed']} completed, "
            f"{rejected} rejected with 429)"
        )
    finally:
        exit_code = server.shutdown()
    print(f"server drained with exit code {exit_code}, "
          f"peak RSS {server.rss_peak_bytes / (1 << 20):.1f} MiB")

    assert exit_code == 0, f"server exited {exit_code} on SIGTERM"
    assert rejected > 0, (
        "the storm never tripped admission control; raise --sessions or lower "
        "--max-documents"
    )

    return {
        "mode": "quick" if args.quick else "full",
        "config": {
            "sessions": args.sessions,
            "connections": args.connections,
            "burst": args.burst,
            "max_documents": args.max_documents,
            "max_in_flight": args.max_in_flight,
            "max_pending": args.max_pending,
            "idle_ttl": args.idle_ttl,
        },
        "coalescing": burst,
        "storm": storm,
        "server": {
            "exit_code": exit_code,
            "rss_peak_mb": round(server.rss_peak_bytes / (1 << 20), 1),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small storm for CI (a few hundred sessions)")
    parser.add_argument("--sessions", type=int, default=None,
                        help="logical editing sessions (default 10000, quick 300)")
    parser.add_argument("--connections", type=int, default=None,
                        help="concurrent keep-alive connections (default 256, quick 32)")
    parser.add_argument("--burst", type=int, default=None,
                        help="identical submissions in the coalesce burst "
                             "(default 256, quick 120)")
    parser.add_argument("--max-documents", type=int, default=None,
                        help="server document cap (default 800, quick 60)")
    parser.add_argument("--max-in-flight", type=int, default=16)
    parser.add_argument("--max-pending", type=int, default=256)
    parser.add_argument("--idle-ttl", type=float, default=None,
                        help="server idle eviction TTL (default 15, quick 4)")
    parser.add_argument("--output", default="BENCH_load.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    if args.sessions is None:
        args.sessions = 300 if args.quick else 10_000
    if args.connections is None:
        args.connections = 32 if args.quick else 256
    if args.burst is None:
        args.burst = 120 if args.quick else 256
    if args.max_documents is None:
        args.max_documents = 60 if args.quick else 800
    if args.idle_ttl is None:
        args.idle_ttl = 4.0 if args.quick else 15.0

    payload = run(args)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
