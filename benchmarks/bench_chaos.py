"""Chaos benchmark: recovery latency per fault class, disabled-plane overhead.

Two questions, answered with numbers:

1. **What does the fault plane cost when it is off?**  The exact hot-path quick
   workload (``bench_hotpath.py --quick``: Pascal, 10 procedures x 4
   statements, seed 7, machines 4, 9 iterations, compiled plans) re-measured
   with the injection sites compiled in but no plan installed.
   ``--check-baseline benchmarks/BENCH_hotpath_baseline.json`` gates the
   processes end-to-end p50 against the committed hot-path baseline with the
   same tolerance machinery (``--tolerance`` / ``BENCH_HOTPATH_TOLERANCE``) —
   if the disabled plane showed up in the profile, this fails.

2. **How long does recovery take under each fault class?**  For every class the
   chaos tests exercise (worker crash, message drop, wire corruption, shm
   attach failure, cache poisoning, deadline expiry) one expression-language
   compile runs under a seeded :class:`FaultPlan` on the substrate where that
   fault bites, and the wall clock to the *settled outcome* — byte-identical
   result or typed error — is compared against a fault-free median on the same
   pool.  The difference is the recovery latency.

Emits ``BENCH_chaos.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_chaos.py            # full run
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_hotpath import (  # noqa: E402 — sibling module, not a package
    REGRESSION_FACTOR,
    _stats,
    bench_substrate,
    check_baseline,
    default_tolerance,
)

from repro import faults  # noqa: E402
from repro.backends import BackendError, create_substrate  # noqa: E402
from repro.distributed.compiler import ParallelCompiler  # noqa: E402
from repro.exprlang.evaluator import random_expression_source  # noqa: E402
from repro.exprlang.frontend import parse_expression  # noqa: E402
from repro.exprlang.grammar import expression_grammar  # noqa: E402
from repro.faults import FaultError, FaultPlan, FaultRule  # noqa: E402
from repro.incremental.cache import ArtifactCache  # noqa: E402
from repro.incremental.engine import IncrementalCompiler  # noqa: E402
from repro.pascal import generate_program  # noqa: E402
from repro.resilience import Deadline, DeadlineExceeded  # noqa: E402
from repro.service import CompilationJob, CompilationService  # noqa: E402

TIMEOUT = 20.0

#: Seconds a starved receive waits before the typed timeout — the knob that
#: dominates message-drop recovery latency, kept short so the benchmark is fast.
DROP_RECEIVE_TIMEOUT = 1.0


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


#: fault class -> (substrate, plan factory).  Substrates are chosen where the
#: fault actually bites; classes needing fork fall back to threads when absent.
FAULT_CELLS = {
    "worker-crash": ("processes", lambda: [
        FaultRule("worker.crash", action="crash", times=1, after=0)
    ]),
    "message-drop": ("threads", lambda: [
        FaultRule("mailbox.send", action="drop", times=1, after=2)
    ]),
    "wire-corrupt": ("sockets", lambda: [
        FaultRule("wire.send", action="corrupt", times=1, after=2)
    ]),
    "shm-attach-failure": ("processes", lambda: [
        FaultRule("shm.attach", action="error", times=1)
    ]),
    "cache-poison": ("threads", lambda: [
        FaultRule("cache.get", action="poison", times=1)
    ]),
    "deadline-expiry": ("threads", lambda: []),
}


def _timed(fn) -> Dict[str, object]:
    started = time.perf_counter()
    try:
        fn()
    except (FaultError, BackendError, DeadlineExceeded) as error:
        return {
            "seconds": time.perf_counter() - started,
            "outcome": "typed-error",
            "error": f"{type(error).__name__}: {error}",
        }
    return {"seconds": time.perf_counter() - started, "outcome": "recovered"}


def bench_fault_class(
    name: str,
    substrate_name: str,
    rules,
    grammar,
    tree,
    clean_iterations: int,
) -> Optional[Dict[str, object]]:
    compiler = ParallelCompiler(grammar)
    receive_timeout = (
        DROP_RECEIVE_TIMEOUT if name == "message-drop" else TIMEOUT
    )
    with create_substrate(substrate_name, receive_timeout=receive_timeout) as pool:
        if name == "deadline-expiry":
            service = CompilationService(pool)
            service.start()
            try:
                job = CompilationJob(
                    language="exprlang",
                    source="let x = 3 in 1 + 2 * x ni",
                    machines=2,
                )
                clean: List[float] = []
                for _ in range(clean_iterations):
                    started = time.perf_counter()
                    service.submit(job).result(timeout=TIMEOUT)
                    clean.append(time.perf_counter() - started)

                def expire():
                    service.submit(
                        job, deadline=Deadline.after(0.0, label="bench")
                    ).result(timeout=TIMEOUT)

                faulted = _timed(expire)
            finally:
                service.close()
        elif name == "cache-poison":
            cache = ArtifactCache()
            incremental = IncrementalCompiler(compiler, cache)
            clean = []
            incremental.compile_tree(tree, 3, substrate=pool)  # warm the cache
            for _ in range(clean_iterations):
                started = time.perf_counter()
                incremental.compile_tree(tree, 3, substrate=pool)
                clean.append(time.perf_counter() - started)
            plan = FaultPlan(seed=42, rules=rules())
            with faults.active(plan):
                faulted = _timed(
                    lambda: incremental.compile_tree(tree, 3, substrate=pool)
                )
        else:
            clean = []
            for _ in range(clean_iterations):
                started = time.perf_counter()
                compiler.compile_tree(tree, 3, substrate=pool)
                clean.append(time.perf_counter() - started)
            plan = FaultPlan(seed=42, rules=rules())
            with faults.active(plan):
                faulted = _timed(
                    lambda: compiler.compile_tree(tree, 3, substrate=pool)
                )
    clean_p50 = _stats(clean)["p50"]
    return {
        "substrate": substrate_name,
        "clean_p50_seconds": clean_p50,
        "faulted_seconds": faulted["seconds"],
        "recovery_latency_seconds": max(0.0, faulted["seconds"] - clean_p50),
        "outcome": faulted["outcome"],
        **({"error": faulted["error"]} if "error" in faulted else {}),
    }


def run(args: argparse.Namespace) -> Dict:
    # The overhead leg mirrors bench_hotpath --quick exactly so the committed
    # hot-path baseline is comparable (same workload-shape keys).
    procedures, statements, iterations = 10, 4, 9
    source = generate_program(
        procedures=procedures, statements_per_procedure=statements, seed=7
    )
    overhead_substrates = ["threads"]
    if _fork_available():
        overhead_substrates.append("processes")

    assert faults.plan.ACTIVE is None, "the overhead leg must run with no plan"
    overhead: Dict[str, Dict] = {}
    for backend in overhead_substrates:
        print(f"overhead (plane disabled): {backend} substrate...")
        overhead[backend] = bench_substrate(
            backend, source, args.machines, iterations, compiled_plans=True
        )
        end = overhead[backend]["end_to_end"]
        print(
            f"  end-to-end p50 {end['p50'] * 1000:.1f}ms  "
            f"p95 {end['p95'] * 1000:.1f}ms"
        )

    grammar = expression_grammar(min_split_size=60)
    tree = parse_expression(random_expression_source(300, seed=11, nesting=6), grammar)
    clean_iterations = 1 if args.quick else 3
    recovery: Dict[str, Dict] = {}
    for name, (substrate_name, rules) in sorted(FAULT_CELLS.items()):
        if substrate_name in ("processes", "sockets") and not _fork_available():
            print(f"fault class {name}: skipped ({substrate_name} needs fork)")
            continue
        if args.quick and substrate_name == "sockets":
            print(f"fault class {name}: skipped in --quick (sockets spin-up)")
            continue
        print(f"fault class {name} on {substrate_name}...")
        cell = bench_fault_class(
            name, substrate_name, rules, grammar, tree, clean_iterations
        )
        recovery[name] = cell
        print(
            f"  {cell['outcome']} in {cell['faulted_seconds'] * 1000:.1f}ms "
            f"(clean p50 {cell['clean_p50_seconds'] * 1000:.1f}ms, recovery "
            f"latency {cell['recovery_latency_seconds'] * 1000:.1f}ms)"
        )

    return {
        "benchmark": "chaos",
        "workload": {
            "language": "pascal",
            "procedures": procedures,
            "statements_per_procedure": statements,
            "seed": 7,
            "source_chars": len(source),
            "machines": args.machines,
            "iterations": iterations,
            "quick": True,  # the overhead leg always uses the quick shape
            "compiled_plans": True,
        },
        "substrates": overhead,  # hotpath-compatible: check_baseline reads this
        "fault_recovery": recovery,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer clean samples, skip sockets spin-up (CI smoke)",
    )
    parser.add_argument("--machines", type=int, default=4,
                        help="evaluator machines for the overhead leg")
    parser.add_argument("--output", default="BENCH_chaos.json",
                        help="where to write the JSON report")
    parser.add_argument(
        "--check-baseline",
        metavar="PATH",
        help=(
            "fail (exit 1) if the disabled-plane processes p50 regressed beyond "
            "the tolerance over this hot-path baseline JSON"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FACTOR",
        help=(
            "regression tolerance factor for --check-baseline "
            f"(default {REGRESSION_FACTOR:g}, or BENCH_HOTPATH_TOLERANCE)"
        ),
    )
    args = parser.parse_args(argv)
    tolerance = args.tolerance if args.tolerance is not None else default_tolerance()
    if tolerance <= 0:
        parser.error("--tolerance must be positive")

    payload = run(args)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.check_baseline:
        return check_baseline(payload, args.check_baseline, tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
