"""Micro-benchmarks of the efficiency substrates the paper calls out (§4.3):
rope strings with O(1) concatenation and applicative symbol tables."""

from __future__ import annotations

from repro.strings.rope import Rope
from repro.symtab.symbol_table import SymbolTable


def test_rope_concatenation(benchmark):
    fragment = Rope.leaf("movl\tr0, r1\n" * 4)

    def build(pieces: int = 2000):
        code = Rope.empty()
        for _ in range(pieces):
            code = Rope.concat(code, fragment)
        return code

    code = benchmark(build)
    assert len(code) == 2000 * len(fragment)


def test_symbol_table_applicative_updates(benchmark):
    names = [f"identifier_{index}" for index in range(500)]

    def build():
        table = SymbolTable()
        for index, name in enumerate(names):
            table = table.add(name, index)
        return table

    table = benchmark(build)
    assert len(table) == 500
    # Hash-index keys keep the unbalanced BST shallow (the paper's balancing argument).
    assert table.depth() <= 40


def test_symbol_table_lookup(benchmark):
    table = SymbolTable()
    for index in range(500):
        table = table.add(f"identifier_{index}", index)

    def lookups():
        total = 0
        for index in range(0, 500, 7):
            total += table.lookup(f"identifier_{index}")
        return total

    assert benchmark(lookups) > 0
