"""Substrate benchmarks: the paper's efficiency substrates and the execution ones.

Two kinds of rows share this module:

* **pytest-benchmark micro-rows** (``test_*``) for the efficiency substrates the
  paper calls out (§4.3): rope strings with O(1) concatenation and applicative
  symbol tables.  Run via the usual benchmark harness.
* **a standalone execution-substrate comparison** (``main``): the same Pascal
  workload compiled on every execution substrate — ``simulated``, ``threads``,
  ``processes`` and the ``sockets`` compile cluster — reporting the
  ship-vs-evaluate wall-clock split per substrate.  The sockets column is the
  interesting one: shipping crosses a real TCP socket (pickled, length-prefixed
  frames), so the split shows what multi-host deployment costs over
  shared-memory processes.  Emits ``BENCH_sockets.json``::

      PYTHONPATH=src python benchmarks/bench_substrates.py            # full run
      PYTHONPATH=src python benchmarks/bench_substrates.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import time
from typing import Dict, List

from repro.strings.rope import Rope
from repro.symtab.symbol_table import SymbolTable

# ------------------------------------------------------- efficiency substrates


def test_rope_concatenation(benchmark):
    fragment = Rope.leaf("movl\tr0, r1\n" * 4)

    def build(pieces: int = 2000):
        code = Rope.empty()
        for _ in range(pieces):
            code = Rope.concat(code, fragment)
        return code

    code = benchmark(build)
    assert len(code) == 2000 * len(fragment)


def test_symbol_table_applicative_updates(benchmark):
    names = [f"identifier_{index}" for index in range(500)]

    def build():
        table = SymbolTable()
        for index, name in enumerate(names):
            table = table.add(name, index)
        return table

    table = benchmark(build)
    assert len(table) == 500
    # Hash-index keys keep the unbalanced BST shallow (the paper's balancing argument).
    assert table.depth() <= 40


def test_symbol_table_lookup(benchmark):
    table = SymbolTable()
    for index in range(500):
        table = table.add(f"identifier_{index}", index)

    def lookups():
        total = 0
        for index in range(0, 500, 7):
            total += table.lookup(f"identifier_{index}")
        return total

    assert benchmark(lookups) > 0


# -------------------------------------------------------- execution substrates


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = (len(ordered) - 1) * q
    lower = int(index)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = index - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def _stats(samples: List[float]) -> Dict[str, float]:
    return {
        "p50": _percentile(samples, 0.50),
        "p95": _percentile(samples, 0.95),
        "samples": len(samples),
    }


def bench_execution_substrate(
    backend: str, source: str, machines: int, iterations: int
) -> Dict[str, Dict[str, float]]:
    """Ship / evaluate / end-to-end wall clock for one warm substrate pool."""
    from repro.api import Session

    phases: Dict[str, List[float]] = {"ship": [], "evaluate": [], "end_to_end": []}
    reference = None
    with Session(backend=backend, machines=machines) as session:
        compiler = session.compiler("pascal")
        reference = compiler.compile(source).value  # warm pool, tables, caches
        for _ in range(iterations):
            started = time.perf_counter()
            result = compiler.compile(source)
            phases["end_to_end"].append(time.perf_counter() - started)
            phases["ship"].append(result.report.wall_ship_seconds)
            phases["evaluate"].append(result.report.wall_evaluation_seconds)
            assert result.value == reference  # parity is part of the benchmark
    row = {phase: _stats(samples) for phase, samples in phases.items()}
    end_to_end = row["end_to_end"]["p50"] or 1.0
    # The headline number for the sockets column: how much of a compile is spent
    # shipping regions across the wire rather than evaluating them.
    row["ship_fraction_p50"] = row["ship"]["p50"] / end_to_end
    return row


def run(args: argparse.Namespace) -> Dict:
    from repro.pascal import generate_program

    if args.quick:
        procedures, statements, iterations = 8, 3, 3
    else:
        procedures, statements, iterations = 20, 5, 8
    source = generate_program(
        procedures=procedures, statements_per_procedure=statements, seed=7
    )

    substrates = ["simulated", "threads"]
    if _fork_available():
        substrates.append("processes")
    substrates.append("sockets")

    results: Dict[str, Dict] = {}
    for backend in substrates:
        print(f"benchmarking {backend} substrate ({iterations} iterations)...")
        results[backend] = bench_execution_substrate(
            backend, source, args.machines, iterations
        )
        row = results[backend]
        print(
            f"  end-to-end p50 {row['end_to_end']['p50'] * 1000:.1f}ms  "
            f"ship p50 {row['ship']['p50'] * 1000:.1f}ms  "
            f"evaluate p50 {row['evaluate']['p50'] * 1000:.1f}ms  "
            f"(ship fraction {row['ship_fraction_p50']:.1%})"
        )

    return {
        "benchmark": "substrates",
        "workload": {
            "language": "pascal",
            "procedures": procedures,
            "statements_per_procedure": statements,
            "seed": 7,
            "source_chars": len(source),
            "machines": args.machines,
            "iterations": iterations,
            "quick": args.quick,
        },
        "substrates": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small program, few iterations (CI smoke)"
    )
    parser.add_argument(
        "--machines", type=int, default=4, help="evaluator machines per compile"
    )
    parser.add_argument(
        "--output", default="BENCH_sockets.json", help="where to write the JSON report"
    )
    args = parser.parse_args(argv)

    payload = run(args)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
