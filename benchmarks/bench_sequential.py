"""T3 — sequential compilation times (combined/static versus dynamic, plus parser)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.sequential import run_sequential_comparison


def test_sequential_times(benchmark, workload):
    result = run_once(benchmark, run_sequential_comparison, workload)
    print()
    print(result.describe())

    # Paper: static evaluation is clearly more efficient sequentially than dynamic
    # evaluation (that is the whole motivation for the combined evaluator), and the
    # sequential compile time for the ~1100-line program is a handful of seconds on the
    # modelled SUN-2-class machine, with parsing a secondary cost.
    assert result.dynamic_time > result.combined_time
    assert 1.0 < result.combined_time < 30.0
    assert result.parse_time < result.combined_time
    assert result.code_bytes > 10_000
